// Package realnet is the live-socket netapi backend: the same Stack
// contract internal/simnet satisfies in simulation, implemented over the
// standard library's net package so an INDISS instance can bind actual
// interfaces — multicast UDP with SO_REUSEADDR port sharing and
// IP_ADD_MEMBERSHIP joins, exclusive unicast UDP, TCP listen/dial.
//
// One Stack is one network identity: a named node with one IPv4 address
// on one interface. Segment() returns the interface name — the real
// multicast scope boundary, just as simnet segments bound simulated
// multicast.
//
// Known divergences from the simulated fabric, inherent to real
// sockets, are documented in DESIGN.md §8: unicast to a port shared by
// several SO_REUSEADDR binders reaches only one of them (simnet's
// exclusive binder always wins), and on platforms without IP_PKTINFO
// the destination address of a datagram is reconstructed heuristically.
package realnet

import (
	"errors"
	"fmt"
	"net"
	"os"
	"syscall"
	"time"

	"indiss/internal/netapi"
)

// Options configures a Stack. The zero value auto-detects: the first
// up, multicast-capable, non-loopback interface with an IPv4 address
// (loopback as a last resort), named after the OS hostname.
type Options struct {
	// Name is the stack's symbolic node name. Empty uses os.Hostname.
	Name string
	// Interface pins the network interface by name (e.g. "eth0", "lo").
	// Empty auto-detects.
	Interface string
	// IP pins the stack's dotted-quad IPv4 source address. Empty uses
	// the interface's first IPv4 address.
	IP string
}

// Stack is a live-socket netapi.Stack bound to one interface and IPv4
// address.
type Stack struct {
	name  string
	ip    net.IP // 4-byte form
	iface *net.Interface
}

var _ netapi.Stack = (*Stack)(nil)

// NewStack opens a stack on a real interface.
func NewStack(opts Options) (*Stack, error) {
	iface, err := pickInterface(opts.Interface, opts.IP)
	if err != nil {
		return nil, err
	}
	ip, err := pickIP(iface, opts.IP)
	if err != nil {
		return nil, err
	}
	name := opts.Name
	if name == "" {
		if hn, err := os.Hostname(); err == nil && hn != "" {
			name = hn
		} else {
			name = "realnet"
		}
	}
	return &Stack{name: name, ip: ip, iface: iface}, nil
}

// Loopback returns a stack on the loopback interface (127.0.0.1) — the
// fabric of the package's round-trip tests and of single-machine interop
// smoke runs.
func Loopback(name string) (*Stack, error) {
	ifaces, err := net.Interfaces()
	if err != nil {
		return nil, fmt.Errorf("realnet: list interfaces: %w", err)
	}
	for _, ifc := range ifaces {
		if ifc.Flags&net.FlagLoopback != 0 && ifc.Flags&net.FlagUp != 0 {
			return NewStack(Options{Name: name, Interface: ifc.Name, IP: "127.0.0.1"})
		}
	}
	return nil, errors.New("realnet: no loopback interface")
}

// pickInterface resolves the named interface; with no name but a pinned
// IP it picks the interface owning that address (the multihomed-container
// case, where docker's eth0/eth1 ordering is not worth depending on);
// otherwise it auto-detects: first up+multicast+non-loopback interface
// carrying IPv4, loopback as the fallback.
func pickInterface(name, wantIP string) (*net.Interface, error) {
	if name != "" {
		ifc, err := net.InterfaceByName(name)
		if err != nil {
			return nil, fmt.Errorf("realnet: interface %q: %w", name, err)
		}
		return ifc, nil
	}
	if wantIP != "" {
		return interfaceByIP(wantIP)
	}
	ifaces, err := net.Interfaces()
	if err != nil {
		return nil, fmt.Errorf("realnet: list interfaces: %w", err)
	}
	var loopback *net.Interface
	for i := range ifaces {
		ifc := &ifaces[i]
		if ifc.Flags&net.FlagUp == 0 {
			continue
		}
		if _, err := firstIPv4(ifc); err != nil {
			continue
		}
		if ifc.Flags&net.FlagLoopback != 0 {
			if loopback == nil {
				loopback = ifc
			}
			continue
		}
		if ifc.Flags&net.FlagMulticast != 0 {
			return ifc, nil
		}
	}
	if loopback != nil {
		return loopback, nil
	}
	return nil, errors.New("realnet: no usable IPv4 interface")
}

// interfaceByIP finds the interface that owns the given IPv4 address.
func interfaceByIP(want string) (*net.Interface, error) {
	ip := net.ParseIP(want)
	if ip == nil || ip.To4() == nil {
		return nil, fmt.Errorf("realnet: %q is not an IPv4 address", want)
	}
	ifaces, err := net.Interfaces()
	if err != nil {
		return nil, fmt.Errorf("realnet: list interfaces: %w", err)
	}
	for i := range ifaces {
		ifc := &ifaces[i]
		addrs, err := ifc.Addrs()
		if err != nil {
			continue
		}
		for _, a := range addrs {
			var have net.IP
			switch v := a.(type) {
			case *net.IPNet:
				have = v.IP
			case *net.IPAddr:
				have = v.IP
			}
			if have != nil && have.To4() != nil && have.Equal(ip) {
				return ifc, nil
			}
		}
	}
	return nil, fmt.Errorf("realnet: no interface owns %s", want)
}

func pickIP(iface *net.Interface, want string) (net.IP, error) {
	if want != "" {
		ip := net.ParseIP(want)
		if ip == nil || ip.To4() == nil {
			return nil, fmt.Errorf("realnet: %q is not an IPv4 address", want)
		}
		return ip.To4(), nil
	}
	return firstIPv4(iface)
}

func firstIPv4(iface *net.Interface) (net.IP, error) {
	addrs, err := iface.Addrs()
	if err != nil {
		return nil, fmt.Errorf("realnet: addrs of %s: %w", iface.Name, err)
	}
	for _, a := range addrs {
		var ip net.IP
		switch v := a.(type) {
		case *net.IPNet:
			ip = v.IP
		case *net.IPAddr:
			ip = v.IP
		}
		if ip4 := ip.To4(); ip4 != nil {
			return ip4, nil
		}
	}
	return nil, fmt.Errorf("realnet: interface %s has no IPv4 address", iface.Name)
}

// Name returns the stack's symbolic node name.
func (s *Stack) Name() string { return s.name }

// IP returns the stack's dotted-quad IPv4 address.
func (s *Stack) IP() string { return s.ip.String() }

// Segment returns the interface name — the real multicast scope.
func (s *Stack) Segment() string {
	if s.iface == nil {
		return "real"
	}
	return s.iface.Name
}

// Interface returns the underlying network interface.
func (s *Stack) Interface() *net.Interface { return s.iface }

// mapErr folds stdlib network errors onto the netapi sentinels so
// transport-neutral callers match the same errors on either fabric.
func mapErr(err error) error {
	if err == nil {
		return nil
	}
	switch {
	case errors.Is(err, net.ErrClosed):
		return netapi.ErrClosed
	case errors.Is(err, os.ErrDeadlineExceeded):
		return netapi.ErrTimeout
	case errors.Is(err, syscall.ECONNREFUSED):
		return fmt.Errorf("%w: %v", netapi.ErrConnRefused, err)
	case errors.Is(err, syscall.EHOSTUNREACH), errors.Is(err, syscall.ENETUNREACH):
		return fmt.Errorf("%w: %v", netapi.ErrNoRoute, err)
	case errors.Is(err, syscall.EADDRINUSE):
		return fmt.Errorf("%w: %v", netapi.ErrPortInUse, err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return netapi.ErrTimeout
	}
	return err
}

// udpAddr converts a netapi address to the stdlib form.
func udpAddr(a netapi.Addr) (*net.UDPAddr, error) {
	ip := net.ParseIP(a.IP)
	if ip == nil {
		return nil, fmt.Errorf("%w: %q", netapi.ErrBadAddr, a.IP)
	}
	return &net.UDPAddr{IP: ip, Port: a.Port}, nil
}

// fromUDPAddr converts a stdlib UDP address to the netapi form.
func fromUDPAddr(a *net.UDPAddr) netapi.Addr {
	if a == nil {
		return netapi.Addr{}
	}
	ip := a.IP
	if ip4 := ip.To4(); ip4 != nil {
		ip = ip4
	}
	return netapi.Addr{IP: ip.String(), Port: a.Port}
}

// probeGroup is the scratch group ProbeMulticast exercises; an
// administratively-scoped address no SDP uses.
const probeGroup = "239.255.77.99"

// ProbeMulticast verifies the stack can join a multicast group and hear
// its own emission — the capability the monitor needs. Environments that
// forbid IP_ADD_MEMBERSHIP (some containers, locked-down hosts) fail
// here, and callers should degrade or skip with the returned reason.
func (s *Stack) ProbeMulticast(timeout time.Duration) error {
	conn, err := s.ListenUDP(0)
	if err != nil {
		return fmt.Errorf("realnet: multicast probe bind: %w", err)
	}
	defer conn.Close()
	if err := conn.JoinGroup(probeGroup); err != nil {
		return fmt.Errorf("realnet: multicast probe: %w", err)
	}
	dst := netapi.Addr{IP: probeGroup, Port: conn.LocalAddr().Port}
	if err := conn.WriteTo([]byte("indiss-mc-probe"), dst); err != nil {
		return fmt.Errorf("realnet: multicast probe send: %w", err)
	}
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			// Recv treats a non-positive timeout as "block forever";
			// an expired deadline must not turn into an infinite wait.
			return fmt.Errorf("realnet: multicast probe: no loopback within %v: %w", timeout, netapi.ErrTimeout)
		}
		dg, err := conn.Recv(remaining)
		if err != nil {
			return fmt.Errorf("realnet: multicast probe: no loopback within %v: %w", timeout, err)
		}
		if string(dg.Payload) == "indiss-mc-probe" {
			return nil
		}
	}
}

// dialTimeout bounds DialTCP's connection establishment.
const dialTimeout = 10 * time.Second

// DialTCP opens a stream to addr.
func (s *Stack) DialTCP(addr netapi.Addr) (netapi.Stream, error) {
	c, err := net.DialTimeout("tcp4", addr.String(), dialTimeout)
	if err != nil {
		return nil, mapErr(err)
	}
	return newTCPStream(c.(*net.TCPConn)), nil
}
