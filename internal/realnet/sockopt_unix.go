//go:build unix

package realnet

import (
	"context"
	"net"
	"strconv"
	"syscall"
)

// controlFd runs fn against the conn's raw file descriptor.
func controlFd(c syscall.Conn, fn func(fd int) error) error {
	rc, err := c.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	if err := rc.Control(func(fd uintptr) { serr = fn(int(fd)) }); err != nil {
		return err
	}
	return serr
}

// listenUDPReuse binds an IPv4 UDP socket with SO_REUSEADDR, so any
// number of monitor-style binders coexist with each other and with a
// native stack's binder of the same port — the sharing model simnet's
// ListenMulticastUDP simulates. host may be empty (wildcard), a unicast
// address, or — on platforms that deliver by bound address — a
// multicast group.
func listenUDPReuse(host string, port int) (*net.UDPConn, error) {
	lc := net.ListenConfig{Control: func(network, address string, rc syscall.RawConn) error {
		var serr error
		if err := rc.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	pc, err := lc.ListenPacket(context.Background(), "udp4", host+":"+strconv.Itoa(port))
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}

// setMulticastInterface routes the socket's multicast emissions out of
// the interface owning local (IP_MULTICAST_IF). Multicast loopback stays
// at its default (on): the monitor must hear same-host traffic.
func setMulticastInterface(c *net.UDPConn, local net.IP) error {
	var b [4]byte
	copy(b[:], local.To4())
	return controlFd(c, func(fd int) error {
		return syscall.SetsockoptInet4Addr(fd, syscall.IPPROTO_IP, syscall.IP_MULTICAST_IF, b)
	})
}

// joinGroup subscribes the socket to group on the interface owning local
// (IP_ADD_MEMBERSHIP).
func joinGroup(c *net.UDPConn, group, local net.IP) error {
	mreq := &syscall.IPMreq{}
	copy(mreq.Multiaddr[:], group.To4())
	copy(mreq.Interface[:], local.To4())
	return controlFd(c, func(fd int) error {
		return syscall.SetsockoptIPMreq(fd, syscall.IPPROTO_IP, syscall.IP_ADD_MEMBERSHIP, mreq)
	})
}

// leaveGroup drops the membership joinGroup added (IP_DROP_MEMBERSHIP).
func leaveGroup(c *net.UDPConn, group, local net.IP) error {
	mreq := &syscall.IPMreq{}
	copy(mreq.Multiaddr[:], group.To4())
	copy(mreq.Interface[:], local.To4())
	return controlFd(c, func(fd int) error {
		return syscall.SetsockoptIPMreq(fd, syscall.IPPROTO_IP, syscall.IP_DROP_MEMBERSHIP, mreq)
	})
}
