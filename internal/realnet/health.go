package realnet

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// The health endpoint is the rig's readiness contract (DESIGN.md §14):
// a live gateway serves a one-line status over plain TCP, and the rig
// driver gates "gateway up" on reading it. The protocol is a single
// line per connection —
//
//	ok gw=gw1 view=12 units=slp,upnp uptime=3.2s
//
// written immediately on accept, then the connection closes. One line
// keeps the probe scriptable (curl, nc, docker-compose healthcheck,
// shell) and keeps the surface too small to ever interfere with the
// discovery planes it reports on. The listener binds the wildcard
// address deliberately: a multihomed gateway container (segment +
// backbone interface) must answer probes on whichever network the
// prober can reach, unlike the discovery stack, which is pinned to one
// interface by design.

// HealthServer answers readiness probes with a one-line status.
type HealthServer struct {
	l      net.Listener
	status func() string

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ServeHealth starts the health endpoint on the TCP port (0 picks an
// ephemeral one). status is called per probe and should return the
// status body without the "ok " prefix or trailing newline; it must be
// safe for concurrent use. A nil status serves a bare "ok".
func ServeHealth(port int, status func() string) (*HealthServer, error) {
	l, err := net.Listen("tcp4", fmt.Sprintf(":%d", port))
	if err != nil {
		return nil, fmt.Errorf("realnet: health listen: %w", err)
	}
	if status == nil {
		status = func() string { return "" }
	}
	h := &HealthServer{l: l, status: status}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Port returns the bound TCP port.
func (h *HealthServer) Port() int {
	return h.l.Addr().(*net.TCPAddr).Port
}

func (h *HealthServer) acceptLoop() {
	defer h.wg.Done()
	for {
		c, err := h.l.Accept()
		if err != nil {
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if closed {
				return
			}
			if transientAcceptError(err) {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer c.Close()
			_ = c.SetWriteDeadline(time.Now().Add(2 * time.Second))
			line := "ok"
			if body := h.status(); body != "" {
				line += " " + body
			}
			_, _ = c.Write(append([]byte(line), '\n'))
		}()
	}
}

// Close stops the endpoint. In-flight probe answers are allowed to
// finish (they are deadline-bounded).
func (h *HealthServer) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.mu.Unlock()
	err := h.l.Close()
	h.wg.Wait()
	return err
}

// ProbeHealth dials a health endpoint once and returns its status line
// (without the trailing newline). A reachable endpoint that does not
// answer "ok" within the timeout is an error: the rig must never treat
// a half-started gateway as ready.
func ProbeHealth(addr string, timeout time.Duration) (string, error) {
	c, err := net.DialTimeout("tcp4", addr, timeout)
	if err != nil {
		return "", fmt.Errorf("realnet: health probe %s: %w", addr, err)
	}
	defer c.Close()
	_ = c.SetReadDeadline(time.Now().Add(timeout))
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("realnet: health probe %s: read: %w", addr, err)
	}
	line = strings.TrimRight(line, "\n")
	if line != "ok" && !strings.HasPrefix(line, "ok ") {
		return "", fmt.Errorf("realnet: health probe %s: endpoint not ready: %q", addr, line)
	}
	return line, nil
}

// WaitHealthy polls a health endpoint until it answers ok or the
// timeout lapses — the rig driver's readiness gate. It returns the
// first healthy status line; the error wraps the last probe failure so
// a never-ready gateway is diagnosable from the gate's message alone.
func WaitHealthy(addr string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	var last error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return "", fmt.Errorf("realnet: %s not healthy within %v: %w", addr, timeout, last)
		}
		probeTimeout := remaining
		if probeTimeout > 2*time.Second {
			probeTimeout = 2 * time.Second
		}
		line, err := ProbeHealth(addr, probeTimeout)
		if err == nil {
			return line, nil
		}
		last = err
		time.Sleep(100 * time.Millisecond)
	}
}
