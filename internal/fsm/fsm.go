// Package fsm implements the deterministic finite automata that coordinate
// INDISS units.
//
// Paper §2.3: "A SDP state machine is a Deterministic Finite Automaton
// (DFA) and is defined as a 5-tuple (Q, Σ, C, T, q0, F), where Q is a
// finite set of states, Σ is the alphabet defining the set of input events
// the automaton operates on, C is a finite set of conditions, T: Q×Σ×C → Q
// is the transition function, q0 ∈ Q is the starting state and F ⊂ Q is a
// set of accepting states."
//
// Transitions are labelled with a trigger event type, an optional named
// guard (a boolean expression over the incoming event and recorded state
// variables) and a sequence of named actions. Event data from previous
// states is recorded in state variables (paper: "events data from previous
// states are recorded using state variables").
//
// Determinism is enforced, not assumed: construction rejects duplicate
// unguarded transitions for one (state, trigger), and Feed rejects inputs
// for which two guards are simultaneously true.
package fsm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"indiss/internal/events"
)

// State names an automaton state.
type State string

// Guard is a condition over the incoming event and the recorded state
// variables (paper: "conditions are written as Boolean expressions over
// incoming and/or recorded data").
type Guard func(ev events.Event, vars Vars) bool

// Action executes when a transition fires. Actions "dispatch events to
// components, record events, or reconfigure the composition" (paper §2.3);
// concretely they receive the triggering event and the mutable variables.
type Action func(ev events.Event, vars Vars) error

// Vars holds the state variables of a running automaton instance.
type Vars map[string]string

// Get returns the variable's value, or "".
func (v Vars) Get(name string) string { return v[name] }

// Set records a value.
func (v Vars) Set(name, value string) { v[name] = value }

// Transition is one labelled edge of the DFA.
type Transition struct {
	From    State
	Trigger events.Type
	// GuardName is "" for an unconditional edge; otherwise it names a
	// guard registered on the Machine. Named (rather than inline) guards
	// keep the transition table printable and let construction detect
	// duplicates.
	GuardName string
	To        State
	// Actions names actions registered on the Machine, executed in
	// order when the edge fires.
	Actions []string
}

// Machine is an immutable, validated DFA definition shared by any number
// of instances.
type Machine struct {
	name    string
	start   State
	accept  map[State]struct{}
	states  map[State]struct{}
	guards  map[string]Guard
	actions map[string]Action
	// edges groups transitions by (state, trigger).
	edges map[State]map[events.Type][]Transition
}

// Builder assembles a Machine. Zero value is not usable; call New.
type Builder struct {
	name    string
	start   State
	accept  []State
	guards  map[string]Guard
	actions map[string]Action
	ts      []Transition
	err     error
}

// New starts building a machine with the given diagnostic name and start
// state.
func New(name string, start State) *Builder {
	return &Builder{
		name:    name,
		start:   start,
		guards:  make(map[string]Guard),
		actions: make(map[string]Action),
	}
}

// Construction and execution errors.
var (
	ErrNondeterministic = errors.New("fsm: nondeterministic transition")
	ErrUnknownGuard     = errors.New("fsm: unknown guard")
	ErrUnknownAction    = errors.New("fsm: unknown action")
	ErrUnknownState     = errors.New("fsm: unknown state")
	ErrAmbiguous        = errors.New("fsm: ambiguous guards at runtime")
)

// Guard registers a named guard.
func (b *Builder) Guard(name string, g Guard) *Builder {
	if g == nil {
		b.fail(fmt.Errorf("fsm: nil guard %q", name))
		return b
	}
	b.guards[name] = g
	return b
}

// Action registers a named action.
func (b *Builder) Action(name string, a Action) *Builder {
	if a == nil {
		b.fail(fmt.Errorf("fsm: nil action %q", name))
		return b
	}
	b.actions[name] = a
	return b
}

// Accept marks accepting states (F).
func (b *Builder) Accept(states ...State) *Builder {
	b.accept = append(b.accept, states...)
	return b
}

// AddTuple appends a transition, mirroring the paper's specification
// operator: AddTuple(CurrentState, triggers, condition-guards, NewState,
// actions).
func (b *Builder) AddTuple(from State, trigger events.Type, guardName string, to State, actions ...string) *Builder {
	b.ts = append(b.ts, Transition{
		From: from, Trigger: trigger, GuardName: guardName, To: to, Actions: actions,
	})
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates the definition and returns the immutable machine.
func (b *Builder) Build() (*Machine, error) {
	if b.err != nil {
		return nil, b.err
	}
	m := &Machine{
		name:    b.name,
		start:   b.start,
		accept:  make(map[State]struct{}, len(b.accept)),
		states:  map[State]struct{}{b.start: {}},
		guards:  b.guards,
		actions: b.actions,
		edges:   make(map[State]map[events.Type][]Transition),
	}
	for _, t := range b.ts {
		if !t.Trigger.Valid() {
			return nil, fmt.Errorf("fsm %s: transition %s--%d: invalid trigger", b.name, t.From, uint16(t.Trigger))
		}
		if t.GuardName != "" {
			if _, ok := b.guards[t.GuardName]; !ok {
				return nil, fmt.Errorf("%w: %q on %s--%s", ErrUnknownGuard, t.GuardName, t.From, t.Trigger)
			}
		}
		for _, a := range t.Actions {
			if _, ok := b.actions[a]; !ok {
				return nil, fmt.Errorf("%w: %q on %s--%s", ErrUnknownAction, a, t.From, t.Trigger)
			}
		}
		m.states[t.From] = struct{}{}
		m.states[t.To] = struct{}{}
		byTrigger, ok := m.edges[t.From]
		if !ok {
			byTrigger = make(map[events.Type][]Transition)
			m.edges[t.From] = byTrigger
		}
		// Determinism: at most one unguarded edge per (state, trigger),
		// and no duplicate guard names.
		for _, existing := range byTrigger[t.Trigger] {
			if existing.GuardName == t.GuardName {
				return nil, fmt.Errorf("%w: duplicate edge %s --%s[%s]-->",
					ErrNondeterministic, t.From, t.Trigger, guardLabel(t.GuardName))
			}
		}
		byTrigger[t.Trigger] = append(byTrigger[t.Trigger], t)
	}
	// Accepting states must name states that actually occur in the
	// transition relation (or the start state).
	for _, s := range b.accept {
		if _, ok := m.states[s]; !ok {
			return nil, fmt.Errorf("%w: accepting state %q", ErrUnknownState, s)
		}
		m.accept[s] = struct{}{}
	}
	return m, nil
}

// MustBuild is Build for statically-known machines whose validity is a
// programming invariant.
func (b *Builder) MustBuild() *Machine {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

func guardLabel(name string) string {
	if name == "" {
		return "true"
	}
	return name
}

// Name returns the machine's diagnostic name.
func (m *Machine) Name() string { return m.name }

// Start returns q0.
func (m *Machine) Start() State { return m.start }

// States returns Q, sorted.
func (m *Machine) States() []State {
	out := make([]State, 0, len(m.states))
	for s := range m.states {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Transitions returns T as a flat, deterministic-ordered list.
func (m *Machine) Transitions() []Transition {
	var out []Transition
	for _, s := range m.States() {
		byTrigger := m.edges[s]
		triggers := make([]events.Type, 0, len(byTrigger))
		for tr := range byTrigger {
			triggers = append(triggers, tr)
		}
		sort.Slice(triggers, func(i, j int) bool { return triggers[i] < triggers[j] })
		for _, tr := range triggers {
			out = append(out, byTrigger[tr]...)
		}
	}
	return out
}

// TraceFunc observes fired transitions: the paper's control events let
// listeners "trace, in real time, SDP internal mechanisms".
type TraceFunc func(from State, ev events.Event, to State)

// Instance is one running automaton. Instances are safe for concurrent
// use; each Feed is atomic.
type Instance struct {
	m *Machine

	mu      sync.Mutex
	current State
	vars    Vars
	trace   TraceFunc
}

// NewInstance starts an instance in q0 with empty state variables.
func (m *Machine) NewInstance() *Instance {
	return &Instance{m: m, current: m.start, vars: make(Vars)}
}

// SetTrace installs a transition observer.
func (i *Instance) SetTrace(t TraceFunc) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.trace = t
}

// Current returns the instance's current state.
func (i *Instance) Current() State {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.current
}

// Accepting reports whether the instance sits in a state of F.
func (i *Instance) Accepting() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	_, ok := i.m.accept[i.current]
	return ok
}

// Var returns a recorded state variable.
func (i *Instance) Var(name string) string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.vars.Get(name)
}

// SetVar records a state variable from outside the automaton (e.g. a unit
// priming the instance with deployment context).
func (i *Instance) SetVar(name, value string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.vars.Set(name, value)
}

// Reset returns the instance to q0 and clears its variables.
func (i *Instance) Reset() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.current = i.m.start
	i.vars = make(Vars)
}

// Feed offers one event to the automaton. If an edge fires, its actions
// run in order and Feed reports fired=true. Events that match no edge are
// filtered (ignored): "according to the unit's current state, incoming
// events are filtered" (paper §2.3). An event matching two guarded edges
// whose guards both evaluate true is an ErrAmbiguous violation of the
// determinism contract.
func (i *Instance) Feed(ev events.Event) (fired bool, err error) {
	i.mu.Lock()
	defer i.mu.Unlock()

	byTrigger := i.m.edges[i.current]
	candidates := byTrigger[ev.Type]
	var chosen *Transition
	for idx := range candidates {
		t := &candidates[idx]
		if t.GuardName == "" {
			if chosen == nil {
				chosen = t
			}
			continue
		}
		if i.m.guards[t.GuardName](ev, i.vars) {
			if chosen != nil && chosen.GuardName != "" {
				return false, fmt.Errorf("%w: %s and %s on %s--%s",
					ErrAmbiguous, guardLabel(chosen.GuardName), t.GuardName, i.current, ev.Type)
			}
			// A true guard takes precedence over the unguarded
			// default edge.
			chosen = t
		}
	}
	if chosen == nil {
		return false, nil
	}

	from := i.current
	for _, name := range chosen.Actions {
		if actErr := i.m.actions[name](ev, i.vars); actErr != nil {
			return false, fmt.Errorf("fsm %s: action %q on %s--%s: %w",
				i.m.name, name, from, ev.Type, actErr)
		}
	}
	i.current = chosen.To
	if i.trace != nil {
		i.trace(from, ev, chosen.To)
	}
	return true, nil
}

// FeedStream feeds every event of a stream in order, stopping at the first
// error. It returns how many events fired transitions.
func (i *Instance) FeedStream(s events.Stream) (firedCount int, err error) {
	for _, ev := range s {
		fired, err := i.Feed(ev)
		if err != nil {
			return firedCount, err
		}
		if fired {
			firedCount++
		}
	}
	return firedCount, nil
}
