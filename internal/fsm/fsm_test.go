package fsm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"indiss/internal/events"
)

// searchMachine builds a small SDP-like coordination process: waiting for
// a request, accumulating attributes, then replying.
func searchMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New("search", "idle").
		Guard("isClock", func(ev events.Event, _ Vars) bool {
			return ev.Data == "service:clock"
		}).
		Action("recordType", func(ev events.Event, vars Vars) error {
			vars.Set("type", ev.Data)
			return nil
		}).
		Action("recordSource", func(ev events.Event, vars Vars) error {
			vars.Set("source", ev.Data)
			return nil
		}).
		AddTuple("idle", events.CStart, "", "open").
		AddTuple("open", events.NetSourceAddr, "", "open", "recordSource").
		AddTuple("open", events.ServiceType, "isClock", "matched", "recordType").
		AddTuple("matched", events.CStop, "", "done").
		Accept("done").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestMachineHappyPath(t *testing.T) {
	m := searchMachine(t)
	inst := m.NewInstance()

	stream := events.NewStream(
		events.E(events.NetSourceAddr, "10.0.0.1:5000"),
		events.E(events.ServiceType, "service:clock"),
	)
	fired, err := inst.FeedStream(stream)
	if err != nil {
		t.Fatalf("FeedStream: %v", err)
	}
	if fired != 4 {
		t.Errorf("fired = %d, want 4", fired)
	}
	if inst.Current() != "done" || !inst.Accepting() {
		t.Errorf("current = %s accepting=%v", inst.Current(), inst.Accepting())
	}
	if inst.Var("type") != "service:clock" || inst.Var("source") != "10.0.0.1:5000" {
		t.Errorf("vars: type=%q source=%q", inst.Var("type"), inst.Var("source"))
	}
}

func TestGuardBlocksTransition(t *testing.T) {
	m := searchMachine(t)
	inst := m.NewInstance()
	stream := events.NewStream(events.E(events.ServiceType, "service:printer"))
	if _, err := inst.FeedStream(stream); err != nil {
		t.Fatalf("FeedStream: %v", err)
	}
	// Guard false: the ServiceType event is filtered, machine stays in
	// "open"; the CStop has no edge from "open" so it is filtered too.
	if inst.Current() != "open" {
		t.Errorf("current = %s, want open", inst.Current())
	}
	if inst.Accepting() {
		t.Error("should not accept")
	}
}

func TestEventFilteringDoesNotFire(t *testing.T) {
	m := searchMachine(t)
	inst := m.NewInstance()
	fired, err := inst.Feed(events.E(events.JiniGroups, "public"))
	if err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if fired {
		t.Error("unrelated event should not fire")
	}
	if inst.Current() != "idle" {
		t.Errorf("current = %s", inst.Current())
	}
}

func TestGuardPrecedenceOverDefault(t *testing.T) {
	m, err := New("prec", "s0").
		Guard("special", func(ev events.Event, _ Vars) bool { return ev.Data == "x" }).
		AddTuple("s0", events.ServiceType, "special", "guarded").
		AddTuple("s0", events.ServiceType, "", "default").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	inst := m.NewInstance()
	if _, err := inst.Feed(events.E(events.ServiceType, "x")); err != nil {
		t.Fatal(err)
	}
	if inst.Current() != "guarded" {
		t.Errorf("true guard should win over default edge, got %s", inst.Current())
	}
	inst2 := m.NewInstance()
	if _, err := inst2.Feed(events.E(events.ServiceType, "y")); err != nil {
		t.Fatal(err)
	}
	if inst2.Current() != "default" {
		t.Errorf("false guard should fall back to default, got %s", inst2.Current())
	}
}

func TestBuildRejectsDuplicateUnguardedEdges(t *testing.T) {
	_, err := New("dup", "s0").
		AddTuple("s0", events.ServiceType, "", "a").
		AddTuple("s0", events.ServiceType, "", "b").
		Build()
	if !errors.Is(err, ErrNondeterministic) {
		t.Errorf("err = %v, want ErrNondeterministic", err)
	}
}

func TestBuildRejectsDuplicateGuardNames(t *testing.T) {
	_, err := New("dup", "s0").
		Guard("g", func(events.Event, Vars) bool { return true }).
		AddTuple("s0", events.ServiceType, "g", "a").
		AddTuple("s0", events.ServiceType, "g", "b").
		Build()
	if !errors.Is(err, ErrNondeterministic) {
		t.Errorf("err = %v, want ErrNondeterministic", err)
	}
}

func TestBuildRejectsUnknownNames(t *testing.T) {
	if _, err := New("x", "s0").
		AddTuple("s0", events.ServiceType, "nosuch", "a").
		Build(); !errors.Is(err, ErrUnknownGuard) {
		t.Errorf("err = %v, want ErrUnknownGuard", err)
	}
	if _, err := New("x", "s0").
		AddTuple("s0", events.ServiceType, "", "a", "nosuch").
		Build(); !errors.Is(err, ErrUnknownAction) {
		t.Errorf("err = %v, want ErrUnknownAction", err)
	}
	if _, err := New("x", "s0").
		Accept("neverdefined").
		Build(); !errors.Is(err, ErrUnknownState) {
		t.Errorf("err = %v, want ErrUnknownState", err)
	}
	if _, err := New("x", "s0").
		AddTuple("s0", events.Type(4242), "", "a").
		Build(); err == nil {
		t.Error("invalid trigger accepted")
	}
	if _, err := New("x", "s0").Guard("nil", nil).Build(); err == nil {
		t.Error("nil guard accepted")
	}
	if _, err := New("x", "s0").Action("nil", nil).Build(); err == nil {
		t.Error("nil action accepted")
	}
}

func TestRuntimeAmbiguityDetected(t *testing.T) {
	m, err := New("amb", "s0").
		Guard("g1", func(events.Event, Vars) bool { return true }).
		Guard("g2", func(events.Event, Vars) bool { return true }).
		AddTuple("s0", events.ServiceType, "g1", "a").
		AddTuple("s0", events.ServiceType, "g2", "b").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	inst := m.NewInstance()
	if _, err := inst.Feed(events.E(events.ServiceType, "x")); !errors.Is(err, ErrAmbiguous) {
		t.Errorf("err = %v, want ErrAmbiguous", err)
	}
}

func TestActionErrorAbortsTransition(t *testing.T) {
	sentinel := errors.New("boom")
	m, err := New("err", "s0").
		Action("fail", func(events.Event, Vars) error { return sentinel }).
		AddTuple("s0", events.ServiceType, "", "s1", "fail").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	inst := m.NewInstance()
	if _, err := inst.Feed(events.E(events.ServiceType, "x")); !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
	if inst.Current() != "s0" {
		t.Errorf("failed action must not change state, got %s", inst.Current())
	}
}

func TestTraceObservesTransitions(t *testing.T) {
	m := searchMachine(t)
	inst := m.NewInstance()
	var trace []string
	inst.SetTrace(func(from State, ev events.Event, to State) {
		trace = append(trace, fmt.Sprintf("%s--%s-->%s", from, ev.Type, to))
	})
	stream := events.NewStream(events.E(events.ServiceType, "service:clock"))
	if _, err := inst.FeedStream(stream); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"idle--SDP_C_START-->open",
		"open--SDP_SERVICE_TYPE-->matched",
		"matched--SDP_C_STOP-->done",
	}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("trace[%d] = %s, want %s", i, trace[i], want[i])
		}
	}
}

func TestResetClearsStateAndVars(t *testing.T) {
	m := searchMachine(t)
	inst := m.NewInstance()
	if _, err := inst.FeedStream(events.NewStream(events.E(events.ServiceType, "service:clock"))); err != nil {
		t.Fatal(err)
	}
	inst.Reset()
	if inst.Current() != "idle" || inst.Var("type") != "" {
		t.Errorf("after reset: state=%s type=%q", inst.Current(), inst.Var("type"))
	}
}

func TestSetVarPrimesInstance(t *testing.T) {
	m := searchMachine(t)
	inst := m.NewInstance()
	inst.SetVar("deployment", "gateway")
	if inst.Var("deployment") != "gateway" {
		t.Error("SetVar lost")
	}
}

func TestStatesAndTransitionsIntrospection(t *testing.T) {
	m := searchMachine(t)
	states := m.States()
	if len(states) != 4 {
		t.Errorf("States = %v", states)
	}
	ts := m.Transitions()
	if len(ts) != 4 {
		t.Errorf("Transitions = %d", len(ts))
	}
	if m.Name() != "search" || m.Start() != "idle" {
		t.Errorf("Name/Start = %s/%s", m.Name(), m.Start())
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	New("bad", "s0").
		AddTuple("s0", events.ServiceType, "missing", "a").
		MustBuild()
}

func TestDeterminismPropertySameInputSamePath(t *testing.T) {
	// Feeding any event sequence to two instances of one machine must
	// land both in the same state with the same variables — the DFA
	// property the paper relies on.
	m := searchMachine(t)
	valid := events.Types()
	f := func(picks []uint8, datas []string) bool {
		a, b := m.NewInstance(), m.NewInstance()
		for i, p := range picks {
			typ := valid[int(p)%len(valid)]
			data := ""
			if i < len(datas) {
				data = datas[i]
			}
			if i%3 == 0 {
				data = "service:clock"
			}
			ev := events.E(typ, data)
			fa, errA := a.Feed(ev)
			fb, errB := b.Feed(ev)
			if fa != fb || (errA == nil) != (errB == nil) {
				return false
			}
		}
		return a.Current() == b.Current() && a.Var("type") == b.Var("type")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
