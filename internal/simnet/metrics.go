package simnet

import (
	"sort"
	"sync"
)

// PortStat aggregates traffic observed on one destination port. Ports are
// how the paper identifies protocols (§2.1: "SDP detection only depends on
// which port raw data arrived"), so per-port counters double as per-SDP
// traffic meters for the adaptation policy of §4.2.
type PortStat struct {
	Port           int
	Packets        int64
	Bytes          int64
	MulticastBytes int64
	DroppedPackets int64
	DroppedBytes   int64
	TCPConnections int64
	TCPStreamBytes int64
}

// Metrics collects network-wide traffic counters. All methods are safe for
// concurrent use.
type Metrics struct {
	mu    sync.Mutex
	ports map[int]*PortStat
}

func newMetrics() *Metrics {
	return &Metrics{ports: make(map[int]*PortStat)}
}

func (m *Metrics) stat(port int) *PortStat {
	st, ok := m.ports[port]
	if !ok {
		st = &PortStat{Port: port}
		m.ports[port] = st
	}
	return st
}

func (m *Metrics) addUDP(port, size int, multicast bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stat(port)
	st.Packets++
	st.Bytes += int64(size)
	if multicast {
		st.MulticastBytes += int64(size)
	}
}

func (m *Metrics) addDrop(port, size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stat(port)
	st.DroppedPackets++
	st.DroppedBytes += int64(size)
}

func (m *Metrics) addTCPConn(port int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stat(port).TCPConnections++
}

func (m *Metrics) addTCPBytes(port, size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stat(port).TCPStreamBytes += int64(size)
}

// Port returns a snapshot of the counters for one port.
func (m *Metrics) Port(port int) PortStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.ports[port]; ok {
		return *st
	}
	return PortStat{Port: port}
}

// Ports returns snapshots for every port that saw traffic, ordered by port.
func (m *Metrics) Ports() []PortStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PortStat, 0, len(m.ports))
	for _, st := range m.ports {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Port < out[j].Port })
	return out
}

// TotalBytes sums UDP payload bytes across all ports.
func (m *Metrics) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, st := range m.ports {
		total += st.Bytes + st.TCPStreamBytes
	}
	return total
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ports = make(map[int]*PortStat)
}
