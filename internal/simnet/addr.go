package simnet

import "indiss/internal/netapi"

// Addr, Datagram and the sentinel errors are shared with every transport
// backend through internal/netapi; simnet aliases them so values flow
// between the packages without conversion and pre-netapi callers keep
// compiling.

// Addr identifies a UDP or TCP endpoint in the simulated network.
type Addr = netapi.Addr

// Datagram is a received UDP packet.
type Datagram = netapi.Datagram

// ErrBadAddr reports a malformed "ip:port" string.
var ErrBadAddr = netapi.ErrBadAddr

// IsMulticastIP reports whether ip falls in the IPv4 multicast range
// 224.0.0.0–239.255.255.255.
func IsMulticastIP(ip string) bool { return netapi.IsMulticastIP(ip) }

// ParseAddr parses an "ip:port" string into an Addr.
func ParseAddr(s string) (Addr, error) { return netapi.ParseAddr(s) }
