package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"indiss/internal/netapi"
)

// chain3 builds A—B—C with instantaneous links and one host per segment.
func chain3(t *testing.T) (*Network, *Host, *Host, *Host) {
	t.Helper()
	n, err := NewTopology(Config{}).
		Segment("A").Segment("B").Segment("C").
		Chain(Link{}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	ha := n.MustAddHostOn("ha", "10.0.1.1", "A")
	hb := n.MustAddHostOn("hb", "10.0.2.1", "B")
	hc := n.MustAddHostOn("hc", "10.0.3.1", "C")
	return n, ha, hb, hc
}

func recvOne(t *testing.T, c netapi.PacketConn, timeout time.Duration) (Datagram, error) {
	t.Helper()
	return c.Recv(timeout)
}

func TestPartitionCutsUnicastAndHealRestores(t *testing.T) {
	n, ha, _, hc := chain3(t)
	conn, err := hc.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := ha.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy: A reaches C across two links.
	if err := sender.WriteTo([]byte("hi"), Addr{IP: hc.IP(), Port: 9000}); err != nil {
		t.Fatalf("healthy send: %v", err)
	}
	if _, err := recvOne(t, conn, time.Second); err != nil {
		t.Fatalf("healthy recv: %v", err)
	}

	// Cut B—C: the chain has no detour, so A—C sends fail with no route.
	if err := n.Partition("B", "C"); err != nil {
		t.Fatal(err)
	}
	if !n.Partitioned("B", "C") {
		t.Fatal("Partitioned(B,C) = false after Partition")
	}
	if err := sender.WriteTo([]byte("lost"), Addr{IP: hc.IP(), Port: 9000}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("partitioned send: err = %v, want ErrNoRoute", err)
	}

	// Heal and the route comes back.
	if err := n.Heal("B", "C"); err != nil {
		t.Fatal(err)
	}
	if err := sender.WriteTo([]byte("back"), Addr{IP: hc.IP(), Port: 9000}); err != nil {
		t.Fatalf("healed send: %v", err)
	}
	if dg, err := recvOne(t, conn, time.Second); err != nil || string(dg.Payload) != "back" {
		t.Fatalf("healed recv: %q, %v", dg.Payload, err)
	}
}

func TestPartitionRoutesAroundInMesh(t *testing.T) {
	n, err := NewTopology(Config{}).
		Segment("A").Segment("B").Segment("C").
		Mesh(Link{}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	ha := n.MustAddHostOn("ha", "10.0.1.1", "A")
	hb := n.MustAddHostOn("hb", "10.0.2.1", "B")
	conn, err := hb.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := ha.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}

	// Direct A—B link down, but the mesh detours via C.
	if err := n.Partition("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := sender.WriteTo([]byte("detour"), Addr{IP: hb.IP(), Port: 9000}); err != nil {
		t.Fatalf("mesh send with A—B cut: %v", err)
	}
	if dg, err := recvOne(t, conn, time.Second); err != nil || string(dg.Payload) != "detour" {
		t.Fatalf("mesh recv: %q, %v", dg.Payload, err)
	}
}

func TestSetLinkMutatesLatencyLive(t *testing.T) {
	n, ha, hb, _ := chain3(t)
	conn, err := hb.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := ha.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := Addr{IP: hb.IP(), Port: 9000}

	start := time.Now()
	if err := sender.WriteTo([]byte("x"), dst); err != nil {
		t.Fatal(err)
	}
	if _, err := recvOne(t, conn, time.Second); err != nil {
		t.Fatal(err)
	}
	fast := time.Since(start)

	if err := n.SetLink("A", "B", Link{Latency: 30 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if err := sender.WriteTo([]byte("y"), dst); err != nil {
		t.Fatal(err)
	}
	if _, err := recvOne(t, conn, time.Second); err != nil {
		t.Fatal(err)
	}
	slow := time.Since(start)
	if slow < 25*time.Millisecond {
		t.Fatalf("after SetLink latency=30ms, delivery took %v (healthy was %v)", slow, fast)
	}

	if err := n.SetLink("A", "C", Link{}); err == nil {
		t.Fatal("SetLink on unlinked pair succeeded, want error")
	}
}

func TestSetLinkLossDropsDatagrams(t *testing.T) {
	n, ha, hb, _ := chain3(t)
	conn, err := hb.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := ha.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetLink("A", "B", Link{LossRate: 0.999999}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := sender.WriteTo([]byte("x"), Addr{IP: hb.IP(), Port: 9000}); err != nil {
			t.Fatal(err)
		}
	}
	if dg, err := recvOne(t, conn, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("lossy link delivered %q (err=%v), want timeout", dg.Payload, err)
	}
}

func TestHostDownDropsTrafficAndUpRestores(t *testing.T) {
	n, ha, hb, _ := chain3(t)
	conn, err := hb.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := ha.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := Addr{IP: hb.IP(), Port: 9000}

	if err := n.SetHostDown("hb", true); err != nil {
		t.Fatal(err)
	}
	if !hb.Down() {
		t.Fatal("Down() = false after SetHostDown(true)")
	}
	// Send succeeds (UDP fire-and-forget) but the packet dies at arrival.
	if err := sender.WriteTo([]byte("void"), dst); err != nil {
		t.Fatalf("send to down host: %v", err)
	}
	if dg, err := recvOne(t, conn, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("down host received %q (err=%v)", dg.Payload, err)
	}
	// A down host's own sends vanish too.
	if hb.Down() {
		bconn, err := hb.ListenUDP(0)
		if err != nil {
			t.Fatalf("bindings must survive while down: %v", err)
		}
		if err := bconn.WriteTo([]byte("ghost"), Addr{IP: ha.IP(), Port: 9000}); err != nil {
			t.Fatalf("send from down host: %v", err)
		}
	}

	// Revive: the same binding receives again — no rebind needed.
	if err := n.SetHostDown("hb", false); err != nil {
		t.Fatal(err)
	}
	if err := sender.WriteTo([]byte("alive"), dst); err != nil {
		t.Fatal(err)
	}
	if dg, err := recvOne(t, conn, time.Second); err != nil || string(dg.Payload) != "alive" {
		t.Fatalf("revived recv: %q, %v", dg.Payload, err)
	}

	if err := n.SetHostDown("nope", true); err == nil {
		t.Fatal("SetHostDown on unknown host succeeded")
	}
}

func TestHostDownBreaksEstablishedStreams(t *testing.T) {
	n, ha, hb, _ := chain3(t)
	l, err := hb.ListenTCP(7000)
	if err != nil {
		t.Fatal(err)
	}
	dialed, err := ha.DialTCP(Addr{IP: hb.IP(), Port: 7000})
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := l.(*Listener).AcceptTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}

	n.SetHostDown("hb", true)

	// Both endpoints see the connection die.
	dialed.SetReadTimeout(time.Second)
	if _, err := dialed.Read(make([]byte, 1)); err == nil || errors.Is(err, ErrTimeout) {
		t.Fatalf("dialer read after peer crash: err = %v, want EOF", err)
	}
	accepted.SetReadTimeout(time.Second)
	if _, err := accepted.Read(make([]byte, 1)); err == nil || errors.Is(err, ErrTimeout) {
		t.Fatalf("acceptor read after own crash: err = %v, want EOF", err)
	}

	// Dialing a down host times out; after revival the listener — which
	// survived — accepts again.
	if _, err := ha.DialTCP(Addr{IP: hb.IP(), Port: 7000}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dial to down host: err = %v, want ErrTimeout", err)
	}
	n.SetHostDown("hb", false)
	s2, err := ha.DialTCP(Addr{IP: hb.IP(), Port: 7000})
	if err != nil {
		t.Fatalf("dial after revival: %v", err)
	}
	s2.Close()
}

func TestPartitionBreaksCrossingStreams(t *testing.T) {
	n, ha, _, hc := chain3(t)
	l, err := hc.ListenTCP(7000)
	if err != nil {
		t.Fatal(err)
	}
	_ = l
	dialed, err := ha.DialTCP(Addr{IP: hc.IP(), Port: 7000})
	if err != nil {
		t.Fatal(err)
	}

	if err := n.Partition("A", "B"); err != nil {
		t.Fatal(err)
	}
	dialed.SetReadTimeout(time.Second)
	if _, err := dialed.Read(make([]byte, 1)); err == nil || errors.Is(err, ErrTimeout) {
		t.Fatalf("read across partition: err = %v, want EOF", err)
	}
	// New dials across the cut fail outright.
	if _, err := ha.DialTCP(Addr{IP: hc.IP(), Port: 7000}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("dial across partition: err = %v, want ErrNoRoute", err)
	}
}

// TestFaultInjectionRaces hammers every fault injector against live
// traffic; the race detector is the assertion.
func TestFaultInjectionRaces(t *testing.T) {
	n, ha, hb, hc := chain3(t)
	conn, err := hc.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := conn.Recv(0); err != nil {
				return
			}
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, h := range []*Host{ha, hb} {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			sender, err := h.ListenUDP(0)
			if err != nil {
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = sender.WriteTo([]byte("load"), Addr{IP: hc.IP(), Port: 9000})
				_ = sender.WriteTo([]byte("load"), Addr{IP: "239.255.255.250", Port: 9000})
				if s, err := h.DialTCP(Addr{IP: hc.IP(), Port: 7000}); err == nil {
					s.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 6 {
			case 0:
				_ = n.Partition("A", "B")
			case 1:
				_ = n.Heal("A", "B")
			case 2:
				_ = n.SetLink("B", "C", Link{Latency: time.Duration(i%5) * time.Millisecond, LossRate: 0.1})
			case 3:
				hb.SetDown(true)
			case 4:
				hb.SetDown(false)
			case 5:
				_ = n.SetLink("B", "C", Link{})
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
