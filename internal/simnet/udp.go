package simnet

import (
	"fmt"
	"sync"
	"time"

	"indiss/internal/netapi"
)

// udpQueueCap bounds a conn's receive queue. Overflowing packets are
// dropped, matching kernel UDP socket behaviour.
const udpQueueCap = 256

// UDPConn is a UDP socket bound to one port of one host. It may join any
// number of multicast groups; a joined conn receives every datagram sent to
// (group, port) by any host on the network, including its own (multicast
// loopback is always on, as the monitor component relies on hearing
// same-host traffic).
type UDPConn struct {
	host   *Host
	port   int
	shared bool // multicast-only binder (SO_REUSEADDR-style)

	mu     sync.Mutex
	groups map[string]struct{}
	closed bool

	queue chan Datagram
	done  chan struct{}
}

// ListenUDP binds a UDP port on the host. Port 0 picks a free ephemeral
// port.
func (h *Host) ListenUDP(port int) (netapi.PacketConn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if port == 0 {
		port = h.freePortLocked()
	} else if _, used := h.udp[port]; used {
		return nil, fmt.Errorf("%w: udp %d on %s", ErrPortInUse, port, h.name)
	}
	c := &UDPConn{
		host:   h,
		port:   port,
		groups: make(map[string]struct{}),
		queue:  make(chan Datagram, udpQueueCap),
		done:   make(chan struct{}),
	}
	h.udp[port] = c
	return c, nil
}

// ListenMulticastUDP binds a shared, multicast-only socket on the port —
// the SO_REUSEADDR pattern SDP monitors use: any number of such sockets may
// coexist with each other and with an exclusive binder of the same port.
// The conn receives only multicast datagrams for groups it joins; unicast
// traffic goes to the exclusive binder alone. This is how the paper's
// monitor component observes SDP traffic "without altering the behaviour
// of SDPs, clients and services" already running on the host.
func (h *Host) ListenMulticastUDP(port int) (netapi.PacketConn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if port == 0 {
		return nil, fmt.Errorf("%w: shared binding needs an explicit port", ErrBadAddr)
	}
	c := &UDPConn{
		host:   h,
		port:   port,
		shared: true,
		groups: make(map[string]struct{}),
		queue:  make(chan Datagram, udpQueueCap),
		done:   make(chan struct{}),
	}
	h.mcast[port] = append(h.mcast[port], c)
	return c, nil
}

// ephemeralBase is where automatic port allocation starts, clear of all
// IANA-registered SDP ports.
const ephemeralBase = 32768

func (h *Host) freePortLocked() int {
	for p := ephemeralBase; ; p++ {
		_, udpUsed := h.udp[p]
		_, tcpUsed := h.listeners[p]
		if !udpUsed && !tcpUsed {
			return p
		}
	}
}

// LocalAddr returns the conn's bound unicast address.
func (c *UDPConn) LocalAddr() Addr { return Addr{IP: c.host.ip, Port: c.port} }

// Host returns the owning host.
func (c *UDPConn) Host() *Host { return c.host }

// JoinGroup subscribes the conn to a multicast group. Joining twice is a
// no-op, as with IP_ADD_MEMBERSHIP.
func (c *UDPConn) JoinGroup(group string) error {
	if !IsMulticastIP(group) {
		return fmt.Errorf("%w: %q is not multicast", ErrBadAddr, group)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.groups[group] = struct{}{}
	return nil
}

// LeaveGroup unsubscribes the conn from a multicast group.
func (c *UDPConn) LeaveGroup(group string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.groups, group)
}

// memberOf reports whether the conn has joined group.
func (c *UDPConn) memberOf(group string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.groups[group]
	return ok
}

// Close unbinds the port. Blocked and future reads fail with ErrClosed.
func (c *UDPConn) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()

	close(c.done)

	h := c.host
	h.mu.Lock()
	if c.shared {
		list := h.mcast[c.port]
		for i, other := range list {
			if other == c {
				h.mcast[c.port] = append(list[:i], list[i+1:]...)
				break
			}
		}
	} else if h.udp[c.port] == c {
		delete(h.udp, c.port)
	}
	h.mu.Unlock()
}

// WriteTo sends payload to dst, which may be unicast or multicast. The send
// itself never blocks; delivery happens asynchronously after the link
// delay. Sending on a closed conn or network returns ErrClosed. Sending to
// a unicast address with no such host returns ErrNoRoute; an unbound port
// on an existing host is silently dropped (ICMP unreachable is invisible to
// UDP senders).
func (c *UDPConn) WriteTo(payload []byte, dst Addr) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}

	n := c.host.net
	n.mu.Lock()
	netClosed := n.closed
	n.mu.Unlock()
	if netClosed {
		return ErrClosed
	}
	if c.host.Down() {
		return nil // crashed host: the NIC is dead, the send vanishes
	}

	// Copy once at the boundary so the caller may reuse its buffer.
	body := make([]byte, len(payload))
	copy(body, payload)
	dg := Datagram{
		Payload: body,
		Src:     c.LocalAddr(),
		Dst:     dst,
	}

	if dst.IsMulticast() {
		return c.sendMulticast(dg)
	}
	return c.sendUnicast(dg)
}

func (c *UDPConn) sendUnicast(dg Datagram) error {
	n := c.host.net
	to := n.HostByIP(dg.Dst.IP)
	if to == nil {
		return fmt.Errorf("%w: %s", ErrNoRoute, dg.Dst.IP)
	}
	path, routed := n.resolvePath(c.host, to)
	if !routed {
		return fmt.Errorf("%w: %s", ErrNoRoute, dg.Dst.IP)
	}
	if n.dropPacketPath(c.host, to, path) {
		n.metrics.addDrop(dg.Dst.Port, len(dg.Payload))
		return nil
	}
	n.metrics.addUDP(dg.Dst.Port, len(dg.Payload), false)
	delay := n.linkDelayPath(c.host, to, len(dg.Payload), path)
	n.sched.schedule(time.Now().Add(delay), func() {
		to.mu.Lock()
		rc := to.udp[dg.Dst.Port]
		to.mu.Unlock()
		if rc != nil {
			rc.push(dg)
		}
	})
	return nil
}

func (c *UDPConn) sendMulticast(dg Datagram) error {
	n := c.host.net
	n.metrics.addUDP(dg.Dst.Port, len(dg.Payload), true)
	seg := c.host.segment()
	for _, to := range n.Hosts() {
		if to.segment() != seg {
			continue // multicast never crosses a segment boundary
		}
		to.mu.Lock()
		receivers := make([]*UDPConn, 0, 1+len(to.mcast[dg.Dst.Port]))
		if rc := to.udp[dg.Dst.Port]; rc != nil {
			receivers = append(receivers, rc)
		}
		receivers = append(receivers, to.mcast[dg.Dst.Port]...)
		to.mu.Unlock()

		delivered := false
		for _, rc := range receivers {
			if !rc.memberOf(dg.Dst.IP) {
				continue
			}
			if !delivered && n.dropPacket(c.host, to) {
				// One loss decision per destination host: the
				// wire either carried the packet there or not.
				n.metrics.addDrop(dg.Dst.Port, len(dg.Payload))
				break
			}
			delivered = true
			delay := n.linkDelay(c.host, to, len(dg.Payload))
			recv := rc
			n.sched.schedule(time.Now().Add(delay), func() { recv.push(dg) })
		}
	}
	return nil
}

// push enqueues a datagram for the reader, dropping it if the queue is full,
// the conn has closed meanwhile, or the host crashed while the packet was
// in flight (a down host's deliveries drop at arrival time).
func (c *UDPConn) push(dg Datagram) {
	if c.host.Down() {
		c.host.net.metrics.addDrop(c.port, len(dg.Payload))
		return
	}
	select {
	case <-c.done:
	case c.queue <- dg:
	default:
		c.host.net.metrics.addDrop(c.port, len(dg.Payload))
	}
}

// C exposes the receive queue for select-based consumers such as the
// monitor component, which listens on many ports at once.
func (c *UDPConn) C() <-chan Datagram { return c.queue }

// Recv waits for one datagram. A non-positive timeout blocks until data
// arrives or the conn closes. It returns ErrTimeout on expiry and ErrClosed
// after Close.
func (c *UDPConn) Recv(timeout time.Duration) (Datagram, error) {
	if timeout <= 0 {
		select {
		case dg := <-c.queue:
			return dg, nil
		case <-c.done:
			return Datagram{}, ErrClosed
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case dg := <-c.queue:
		return dg, nil
	case <-c.done:
		return Datagram{}, ErrClosed
	case <-timer.C:
		return Datagram{}, ErrTimeout
	}
}
