package simnet

import (
	"fmt"
	"time"
)

// The paper deploys INDISS on a single multicast segment; production
// topologies have many. This file adds the network's notion of segments:
// every host lives on exactly one, multicast is scoped to the host's own
// segment (IP multicast does not cross routers without explicit relay),
// and unicast routes between segments over explicit links that model the
// routed path's latency, bandwidth and loss.

// DefaultSegment is the segment hosts join when none is named — the
// implicit single LAN every pre-segment caller gets.
const DefaultSegment = "lan0"

// Link fixes the physical characteristics of one inter-segment link.
// The zero value is an instantaneous, lossless, infinitely fast link.
type Link struct {
	// Latency is the one-way propagation delay across the link.
	Latency time.Duration
	// BandwidthBps, when non-zero, adds a serialization cost of
	// len(payload)*8/BandwidthBps seconds per traversal.
	BandwidthBps int64
	// LossRate is the probability in [0,1] that the link drops a UDP
	// datagram crossing it. TCP traffic is never dropped (it models a
	// reliable transport end to end).
	LossRate float64
}

// WAN2ms is a convenient inter-segment link profile: a routed 100 Mb/s
// path with 2ms one-way latency — the "between buildings" counterpart of
// the paper's 10 Mb/s LAN.
func WAN2ms() Link {
	return Link{Latency: 2 * time.Millisecond, BandwidthBps: 100_000_000}
}

// segment is one multicast domain of the network.
type segment struct {
	name string
}

// AddSegment registers a new, initially unlinked segment.
func (n *Network) AddSegment(name string) error {
	if name == "" {
		return fmt.Errorf("simnet: empty segment name")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if _, dup := n.segments[name]; dup {
		return fmt.Errorf("simnet: duplicate segment %q", name)
	}
	n.segments[name] = &segment{name: name}
	n.routes = nil
	return nil
}

// AddLink connects two segments with a bidirectional link. Linking a
// pair twice replaces the previous link.
func (n *Network) AddLink(a, b string, l Link) error {
	if a == b {
		return fmt.Errorf("simnet: cannot link segment %q to itself", a)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	for _, name := range []string{a, b} {
		if _, ok := n.segments[name]; !ok {
			return fmt.Errorf("simnet: unknown segment %q", name)
		}
	}
	if n.links[a] == nil {
		n.links[a] = make(map[string]Link)
	}
	if n.links[b] == nil {
		n.links[b] = make(map[string]Link)
	}
	n.links[a][b] = l
	n.links[b][a] = l
	n.routes = nil // paths may have changed
	return nil
}

// Segments returns the registered segment names, in no particular order.
func (n *Network) Segments() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.segments))
	for name := range n.segments {
		out = append(out, name)
	}
	return out
}

// AddHostOn registers a host on the named segment. The segment must
// already exist (AddSegment or a Topology builder), except DefaultSegment
// which is created on demand.
func (n *Network) AddHostOn(name, ip, seg string) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addHostLocked(name, ip, seg)
}

// MustAddHostOn is AddHostOn for tests and examples.
func (n *Network) MustAddHostOn(name, ip, seg string) *Host {
	h, err := n.AddHostOn(name, ip, seg)
	if err != nil {
		panic(err)
	}
	return h
}

// route returns the link path between two segments, shortest first by
// hop count. ok is false when the segments are not connected. Same
// segment returns an empty path. Paths are cached; AddLink/AddSegment
// invalidate the cache.
func (n *Network) route(from, to string) ([]Link, bool) {
	if from == to {
		return nil, true
	}
	key := from + "\x00" + to
	n.mu.Lock()
	defer n.mu.Unlock()
	if path, ok := n.routes[key]; ok {
		return path, path != nil
	}
	path := n.bfsLocked(from, to)
	if n.routes == nil {
		n.routes = make(map[string][]Link)
	}
	n.routes[key] = path // nil caches "no route" too
	return path, path != nil
}

// bfsLocked finds the hop-minimal link path from → to. Requires n.mu.
func (n *Network) bfsLocked(from, to string) []Link {
	if _, ok := n.segments[from]; !ok {
		return nil
	}
	type hop struct {
		seg  string
		prev *hop
		link Link
	}
	visited := map[string]bool{from: true}
	queue := []*hop{{seg: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.seg == to {
			// Reconstruct, reversing from destination to source.
			var rev []Link
			for h := cur; h.prev != nil; h = h.prev {
				rev = append(rev, h.link)
			}
			path := make([]Link, len(rev))
			for i, l := range rev {
				path[len(rev)-1-i] = l
			}
			return path
		}
		for next, l := range n.links[cur.seg] {
			if visited[next] || n.cutLocked(cur.seg, next) {
				continue // partitioned link: route around or not at all
			}
			visited[next] = true
			queue = append(queue, &hop{seg: next, prev: cur, link: l})
		}
	}
	return nil
}

// Topology declaratively builds a segmented network:
//
//	net, err := simnet.NewTopology(simnet.LAN10Mbps()).
//		Segment("A").Segment("B").Segment("C").
//		Link("A", "B", simnet.WAN2ms()).
//		Link("B", "C", simnet.WAN2ms()).
//		Build()
//
// Each segment is a LAN with the Config's intra-segment characteristics;
// links model the routed paths between them. A topology with no segments
// builds the implicit single-LAN network New returns.
type Topology struct {
	cfg      Config
	segments []string
	links    []topoLink
}

type topoLink struct {
	a, b string
	link Link
}

// NewTopology starts a topology whose segments share the given
// intra-segment configuration.
func NewTopology(cfg Config) *Topology {
	return &Topology{cfg: cfg}
}

// Segment declares a segment.
func (t *Topology) Segment(name string) *Topology {
	t.segments = append(t.segments, name)
	return t
}

// Link declares a bidirectional link between two declared segments.
func (t *Topology) Link(a, b string, l Link) *Topology {
	t.links = append(t.links, topoLink{a: a, b: b, link: l})
	return t
}

// Chain links the declared segments in declaration order with the same
// link profile — the "line of buildings" topology.
func (t *Topology) Chain(l Link) *Topology {
	for i := 1; i < len(t.segments); i++ {
		t.Link(t.segments[i-1], t.segments[i], l)
	}
	return t
}

// Mesh links every declared segment pair with the same link profile.
func (t *Topology) Mesh(l Link) *Topology {
	for i := 0; i < len(t.segments); i++ {
		for j := i + 1; j < len(t.segments); j++ {
			t.Link(t.segments[i], t.segments[j], l)
		}
	}
	return t
}

// Build materializes the network. It fails on duplicate segments or
// links naming undeclared segments.
func (t *Topology) Build() (*Network, error) {
	n := New(t.cfg)
	for _, s := range t.segments {
		if err := n.AddSegment(s); err != nil {
			n.Close()
			return nil, err
		}
	}
	for _, l := range t.links {
		if err := n.AddLink(l.a, l.b, l.link); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

// MustBuild is Build for tests and examples.
func (t *Topology) MustBuild() *Network {
	n, err := t.Build()
	if err != nil {
		panic(err)
	}
	return n
}
