package simnet

import (
	"errors"
	"testing"
	"time"
)

func buildABC(t *testing.T, link Link) *Network {
	t.Helper()
	n, err := NewTopology(Config{}).
		Segment("A").Segment("B").Segment("C").
		Chain(link).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestMulticastScopedToSegment(t *testing.T) {
	n := buildABC(t, Link{})
	a := n.MustAddHostOn("a", "10.0.1.1", "A")
	a2 := n.MustAddHostOn("a2", "10.0.1.2", "A")
	b := n.MustAddHostOn("b", "10.0.2.1", "B")

	sender, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	recvSame, err := a2.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	if err := recvSame.JoinGroup("239.1.2.3"); err != nil {
		t.Fatal(err)
	}
	recvOther, err := b.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	if err := recvOther.JoinGroup("239.1.2.3"); err != nil {
		t.Fatal(err)
	}

	if err := sender.WriteTo([]byte("hello"), Addr{IP: "239.1.2.3", Port: 9000}); err != nil {
		t.Fatal(err)
	}
	if _, err := recvSame.Recv(time.Second); err != nil {
		t.Fatalf("same-segment receiver missed the multicast: %v", err)
	}
	if dg, err := recvOther.Recv(50 * time.Millisecond); err == nil {
		t.Fatalf("multicast crossed the segment boundary: %q", dg.Payload)
	}
}

func TestUnicastRoutesAcrossLinkedSegments(t *testing.T) {
	n := buildABC(t, Link{Latency: time.Millisecond})
	a := n.MustAddHostOn("a", "10.0.1.1", "A")
	c := n.MustAddHostOn("c", "10.0.3.1", "C")

	sender, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := c.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := sender.WriteTo([]byte("x"), Addr{IP: "10.0.3.1", Port: 9000}); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.Recv(time.Second); err != nil {
		t.Fatalf("routed unicast never arrived: %v", err)
	}
	// A→C traverses two 1ms links; the datagram cannot arrive sooner.
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("two-hop delivery took %v, want >= 2ms of link latency", elapsed)
	}
}

func TestUnicastRefusedBetweenUnlinkedSegments(t *testing.T) {
	n, err := NewTopology(Config{}).Segment("A").Segment("B").Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	a := n.MustAddHostOn("a", "10.0.1.1", "A")
	b := n.MustAddHostOn("b", "10.0.2.1", "B")

	sender, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.WriteTo([]byte("x"), Addr{IP: "10.0.2.1", Port: 9000}); !errors.Is(err, ErrNoRoute) {
		t.Errorf("UDP to unlinked segment: err = %v, want ErrNoRoute", err)
	}
	if _, err := a.DialTCP(Addr{IP: "10.0.2.1", Port: 80}); !errors.Is(err, ErrNoRoute) {
		t.Errorf("TCP to unlinked segment: err = %v, want ErrNoRoute", err)
	}
	_ = b
}

func TestTCPAcrossSegments(t *testing.T) {
	n := buildABC(t, Link{Latency: 500 * time.Microsecond})
	a := n.MustAddHostOn("a", "10.0.1.1", "A")
	c := n.MustAddHostOn("c", "10.0.3.1", "C")

	l, err := c.ListenTCP(7000)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []byte, 1)
	go func() {
		s, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		buf := make([]byte, 16)
		nr, err := s.Read(buf)
		if err != nil {
			done <- nil
			return
		}
		done <- buf[:nr]
	}()
	s, err := a.DialTCP(Addr{IP: "10.0.3.1", Port: 7000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if string(got) != "ping" {
			t.Fatalf("cross-segment stream carried %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cross-segment TCP never delivered")
	}
}

func TestLinkLossAppliedPerLink(t *testing.T) {
	n, err := NewTopology(Config{}).
		Segment("A").Segment("B").
		Link("A", "B", Link{LossRate: 1.0}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	a := n.MustAddHostOn("a", "10.0.1.1", "A")
	a2 := n.MustAddHostOn("a2", "10.0.1.2", "A")
	b := n.MustAddHostOn("b", "10.0.2.1", "B")

	sender, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := b.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	local, err := a2.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.WriteTo([]byte("x"), Addr{IP: "10.0.2.1", Port: 9000}); err != nil {
		t.Fatal(err)
	}
	if err := sender.WriteTo([]byte("x"), Addr{IP: "10.0.1.2", Port: 9000}); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Recv(time.Second); err != nil {
		t.Fatalf("lossless intra-segment datagram dropped: %v", err)
	}
	if _, err := cross.Recv(50 * time.Millisecond); err == nil {
		t.Fatal("datagram survived a LossRate=1.0 link")
	}
}

func TestDefaultSegmentBackwardCompatible(t *testing.T) {
	n := New(Config{})
	t.Cleanup(n.Close)
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")
	if a.Segment() != DefaultSegment || b.Segment() != DefaultSegment {
		t.Fatalf("default hosts on segments %q/%q", a.Segment(), b.Segment())
	}
	sender, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := b.ListenUDP(9000)
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.JoinGroup("239.1.2.3"); err != nil {
		t.Fatal(err)
	}
	if err := sender.WriteTo([]byte("x"), Addr{IP: "239.1.2.3", Port: 9000}); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.Recv(time.Second); err != nil {
		t.Fatalf("single-LAN multicast broken: %v", err)
	}
}

func TestTopologyBuilderErrors(t *testing.T) {
	if _, err := NewTopology(Config{}).Segment("A").Segment("A").Build(); err == nil {
		t.Error("duplicate segment accepted")
	}
	if _, err := NewTopology(Config{}).Segment("A").Link("A", "Z", Link{}).Build(); err == nil {
		t.Error("link to undeclared segment accepted")
	}
	if _, err := NewTopology(Config{}).Segment("A").Link("A", "A", Link{}).Build(); err == nil {
		t.Error("self-link accepted")
	}
	n := New(Config{})
	t.Cleanup(n.Close)
	if _, err := n.AddHostOn("x", "10.0.0.1", "nope"); err == nil {
		t.Error("host on undeclared segment accepted")
	}
}

func TestRouteCacheInvalidatedByNewLink(t *testing.T) {
	n, err := NewTopology(Config{}).Segment("A").Segment("B").Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	a := n.MustAddHostOn("a", "10.0.1.1", "A")
	n.MustAddHostOn("b", "10.0.2.1", "B")
	sender, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := Addr{IP: "10.0.2.1", Port: 9000}
	if err := sender.WriteTo([]byte("x"), dst); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("pre-link send: err = %v, want ErrNoRoute", err)
	}
	if err := n.AddLink("A", "B", Link{}); err != nil {
		t.Fatal(err)
	}
	if err := sender.WriteTo([]byte("x"), dst); err != nil {
		t.Errorf("post-link send still refused: %v", err)
	}
}
