package simnet

import (
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"indiss/internal/netapi"
)

func newTestNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n := New(cfg)
	t.Cleanup(n.Close)
	return n
}

func TestAddHostDuplicate(t *testing.T) {
	n := newTestNet(t, Config{})
	if _, err := n.AddHost("a", "10.0.0.1"); err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	if _, err := n.AddHost("b", "10.0.0.1"); !errors.Is(err, ErrDuplicateHost) {
		t.Fatalf("duplicate IP: got %v, want ErrDuplicateHost", err)
	}
	if _, err := n.AddHost("a", "10.0.0.2"); !errors.Is(err, ErrDuplicateHost) {
		t.Fatalf("duplicate name: got %v, want ErrDuplicateHost", err)
	}
}

func TestUnicastDelivery(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	recv, err := b.ListenUDP(5000)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := send.WriteTo([]byte("hello"), Addr{IP: "10.0.0.2", Port: 5000}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	dg, err := recv.Recv(time.Second)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(dg.Payload) != "hello" {
		t.Errorf("payload = %q, want %q", dg.Payload, "hello")
	}
	if dg.Src.IP != "10.0.0.1" {
		t.Errorf("src = %v, want 10.0.0.1", dg.Src)
	}
	if dg.Dst != (Addr{IP: "10.0.0.2", Port: 5000}) {
		t.Errorf("dst = %v", dg.Dst)
	}
}

func TestUnicastNoRoute(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	err = send.WriteTo([]byte("x"), Addr{IP: "10.9.9.9", Port: 1})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("got %v, want ErrNoRoute", err)
	}
}

func TestUnicastUnboundPortSilentlyDropped(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	n.MustAddHost("b", "10.0.0.2")
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := send.WriteTo([]byte("x"), Addr{IP: "10.0.0.2", Port: 999}); err != nil {
		t.Fatalf("WriteTo to unbound port should not error, got %v", err)
	}
}

func TestMulticastMembership(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")
	c := n.MustAddHost("c", "10.0.0.3")

	const group = "239.255.255.253"
	const port = 427

	member, err := b.ListenUDP(port)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := member.JoinGroup(group); err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	nonMember, err := c.ListenUDP(port)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}

	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := send.WriteTo([]byte("mc"), Addr{IP: group, Port: port}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}

	if _, err := member.Recv(time.Second); err != nil {
		t.Errorf("member should receive: %v", err)
	}
	if _, err := nonMember.Recv(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("non-member should not receive, got err=%v", err)
	}
}

func TestMulticastLoopback(t *testing.T) {
	// A sender that is also a member must hear its own datagrams: the
	// monitor component depends on observing same-host traffic.
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	const group = "239.255.255.250"

	self, err := a.ListenUDP(1900)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := self.JoinGroup(group); err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	if err := self.WriteTo([]byte("notify"), Addr{IP: group, Port: 1900}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	dg, err := self.Recv(time.Second)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(dg.Payload) != "notify" {
		t.Errorf("payload = %q", dg.Payload)
	}
}

func TestLeaveGroupStopsDelivery(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")
	const group = "239.0.0.1"

	recv, err := b.ListenUDP(100)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := recv.JoinGroup(group); err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	recv.LeaveGroup(group)

	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := send.WriteTo([]byte("x"), Addr{IP: group, Port: 100}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if _, err := recv.Recv(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("got err=%v, want timeout after leave", err)
	}
}

func TestJoinGroupRejectsUnicast(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	conn, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := conn.JoinGroup("10.0.0.9"); !errors.Is(err, ErrBadAddr) {
		t.Errorf("got %v, want ErrBadAddr", err)
	}
}

func TestUDPOrderingPreserved(t *testing.T) {
	n := newTestNet(t, Config{LANLatency: 100 * time.Microsecond})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	recv, err := b.ListenUDP(7)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	const count = 50
	for i := 0; i < count; i++ {
		if err := send.WriteTo([]byte{byte(i)}, Addr{IP: "10.0.0.2", Port: 7}); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
	}
	for i := 0; i < count; i++ {
		dg, err := recv.Recv(time.Second)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if dg.Payload[0] != byte(i) {
			t.Fatalf("packet %d arrived out of order (got %d)", i, dg.Payload[0])
		}
	}
}

func TestPortInUse(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	if _, err := a.ListenUDP(1900); err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if _, err := a.ListenUDP(1900); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("got %v, want ErrPortInUse", err)
	}
	// Rebinding after close must succeed.
	c, err := a.ListenUDP(4160)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	c.Close()
	if _, err := a.ListenUDP(4160); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestRecvAfterClose(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	c, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	c.Close()
	if _, err := c.Recv(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestLatencyApplied(t *testing.T) {
	const lat = 5 * time.Millisecond
	n := newTestNet(t, Config{LANLatency: lat})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	recv, err := b.ListenUDP(9)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	start := time.Now()
	if err := send.WriteTo([]byte("x"), Addr{IP: "10.0.0.2", Port: 9}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if _, err := recv.Recv(time.Second); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Errorf("delivery took %v, want >= %v", elapsed, lat)
	}
}

func TestSerializationCost(t *testing.T) {
	// 10 kB at 10 Mb/s is 8 ms of serialization on top of propagation.
	n := newTestNet(t, Config{LANLatency: time.Millisecond, BandwidthBps: 10_000_000})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	recv, err := b.ListenUDP(9)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	payload := make([]byte, 10_000)
	start := time.Now()
	if err := send.WriteTo(payload, Addr{IP: "10.0.0.2", Port: 9}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if _, err := recv.Recv(time.Second); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 9*time.Millisecond {
		t.Errorf("delivery took %v, want >= 9ms (1ms prop + 8ms serialization)", elapsed)
	}
}

func TestLossInjectionDropsRoughlyAtRate(t *testing.T) {
	n := newTestNet(t, Config{LossRate: 0.5, Seed: 42})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	recv, err := b.ListenUDP(9)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	const count = 200
	for i := 0; i < count; i++ {
		if err := send.WriteTo([]byte{1}, Addr{IP: "10.0.0.2", Port: 9}); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
	}
	got := 0
	for {
		if _, err := recv.Recv(50 * time.Millisecond); err != nil {
			break
		}
		got++
	}
	if got == 0 || got == count {
		t.Fatalf("got %d/%d packets; loss rate 0.5 should drop some but not all", got, count)
	}
	if drops := n.Metrics().Port(9).DroppedPackets; drops != int64(count-got) {
		t.Errorf("metrics drops = %d, want %d", drops, count-got)
	}
}

func TestLoopbackNeverDropped(t *testing.T) {
	n := newTestNet(t, Config{LossRate: 1.0, Seed: 7})
	a := n.MustAddHost("a", "10.0.0.1")
	const group = "239.0.0.7"
	self, err := a.ListenUDP(70)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := self.JoinGroup(group); err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	if err := self.WriteTo([]byte("x"), Addr{IP: group, Port: 70}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if _, err := self.Recv(time.Second); err != nil {
		t.Fatalf("loopback packet lost despite LossRate=1: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	n := newTestNet(t, Config{LANLatency: time.Millisecond})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	l, err := b.ListenTCP(8080)
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	type result struct {
		data []byte
		err  error
	}
	echoDone := make(chan result, 1)
	go func() {
		s, err := l.Accept()
		if err != nil {
			echoDone <- result{err: err}
			return
		}
		buf := make([]byte, 64)
		nr, err := s.Read(buf)
		if err != nil {
			echoDone <- result{err: err}
			return
		}
		if _, err := s.Write(buf[:nr]); err != nil {
			echoDone <- result{err: err}
			return
		}
		s.Close()
		echoDone <- result{data: buf[:nr]}
	}()

	s, err := a.DialTCP(Addr{IP: "10.0.0.2", Port: 8080})
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	if _, err := s.Write([]byte("ping")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 64)
	nr, err := s.Read(buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(buf[:nr]) != "ping" {
		t.Errorf("echo = %q", buf[:nr])
	}
	r := <-echoDone
	if r.err != nil {
		t.Fatalf("server: %v", r.err)
	}
	// After peer close, further reads reach EOF.
	if _, err := s.Read(buf); !errors.Is(err, io.EOF) {
		t.Errorf("got %v, want io.EOF", err)
	}
}

func TestTCPConnRefused(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	n.MustAddHost("b", "10.0.0.2")
	if _, err := a.DialTCP(Addr{IP: "10.0.0.2", Port: 80}); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("got %v, want ErrConnRefused", err)
	}
	if _, err := a.DialTCP(Addr{IP: "10.9.9.9", Port: 80}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("got %v, want ErrNoRoute", err)
	}
}

func TestTCPReadTimeout(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")
	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	s, err := a.DialTCP(Addr{IP: "10.0.0.2", Port: 80})
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	if _, err := l.AcceptTimeout(time.Second); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	s.SetReadTimeout(10 * time.Millisecond)
	buf := make([]byte, 8)
	if _, err := s.Read(buf); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

func TestNetworkCloseStopsEverything(t *testing.T) {
	n := New(Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	conn, err := a.ListenUDP(5)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	n.Close()
	if _, err := conn.Recv(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after network close: got %v, want ErrClosed", err)
	}
	if err := conn.WriteTo([]byte("x"), Addr{IP: "10.0.0.1", Port: 5}); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteTo after network close: got %v, want ErrClosed", err)
	}
	// Double close must be safe.
	n.Close()
}

func TestMetricsAccounting(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	recv, err := b.ListenUDP(427)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := recv.JoinGroup("239.255.255.253"); err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := send.WriteTo(make([]byte, 100), Addr{IP: "239.255.255.253", Port: 427}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if err := send.WriteTo(make([]byte, 50), Addr{IP: "10.0.0.2", Port: 427}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := recv.Recv(time.Second); err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
	}
	st := n.Metrics().Port(427)
	if st.Packets != 2 || st.Bytes != 150 || st.MulticastBytes != 100 {
		t.Errorf("stat = %+v, want 2 packets, 150 bytes, 100 multicast", st)
	}
	n.Metrics().Reset()
	if st := n.Metrics().Port(427); st.Packets != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")
	recv, err := b.ListenUDP(9)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	// Nothing reads recv, so the queue must eventually overflow without
	// blocking the sender or the scheduler.
	total := udpQueueCap * 2
	for i := 0; i < total; i++ {
		if err := send.WriteTo([]byte{1}, Addr{IP: "10.0.0.2", Port: 9}); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.Metrics().Port(9).DroppedPackets == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drops recorded after queue overflow")
		}
		time.Sleep(time.Millisecond)
	}
	got := 0
	for {
		if _, err := recv.Recv(20 * time.Millisecond); err != nil {
			break
		}
		got++
	}
	if got != udpQueueCap {
		t.Errorf("received %d packets, want exactly queue capacity %d", got, udpQueueCap)
	}
}

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in      string
		want    Addr
		wantErr bool
	}{
		{"10.0.0.1:427", Addr{IP: "10.0.0.1", Port: 427}, false},
		{"239.255.255.250:1900", Addr{IP: "239.255.255.250", Port: 1900}, false},
		{"nope", Addr{}, true},
		{":80", Addr{}, true},
		{"10.0.0.1:notaport", Addr{}, true},
		{"10.0.0.1:70000", Addr{}, true},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseAddr(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint8, port uint16) bool {
		addr := Addr{
			IP:   "10.0.0.1",
			Port: int(port),
		}
		_ = a
		_ = b
		_ = c
		_ = d
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsMulticastIP(t *testing.T) {
	tests := []struct {
		ip   string
		want bool
	}{
		{"224.0.0.1", true},
		{"239.255.255.253", true},
		{"223.255.255.255", false},
		{"240.0.0.1", false},
		{"10.0.0.1", false},
		{"garbage", false},
		{"", false},
	}
	for _, tt := range tests {
		if got := IsMulticastIP(tt.ip); got != tt.want {
			t.Errorf("IsMulticastIP(%q) = %v, want %v", tt.ip, got, tt.want)
		}
	}
}

func TestSharedMulticastListener(t *testing.T) {
	// A monitor-style shared binder coexists with an exclusive binder on
	// the same port: both hear multicast; only the exclusive binder hears
	// unicast.
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")
	const group, port = "239.255.255.253", 427

	exclusive, err := b.ListenUDP(port)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	if err := exclusive.JoinGroup(group); err != nil {
		t.Fatal(err)
	}
	shared, err := b.ListenMulticastUDP(port)
	if err != nil {
		t.Fatalf("ListenMulticastUDP: %v", err)
	}
	if err := shared.JoinGroup(group); err != nil {
		t.Fatal(err)
	}

	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := send.WriteTo([]byte("mc"), Addr{IP: group, Port: port}); err != nil {
		t.Fatal(err)
	}
	if _, err := exclusive.Recv(time.Second); err != nil {
		t.Errorf("exclusive missed multicast: %v", err)
	}
	if _, err := shared.Recv(time.Second); err != nil {
		t.Errorf("shared missed multicast: %v", err)
	}

	if err := send.WriteTo([]byte("uc"), Addr{IP: "10.0.0.2", Port: port}); err != nil {
		t.Fatal(err)
	}
	if _, err := exclusive.Recv(time.Second); err != nil {
		t.Errorf("exclusive missed unicast: %v", err)
	}
	if _, err := shared.Recv(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("shared should not hear unicast, got %v", err)
	}

	// Shared binder close releases only itself.
	shared.Close()
	if _, err := b.ListenMulticastUDP(port); err != nil {
		t.Errorf("rebind shared after close: %v", err)
	}
	if _, err := b.ListenMulticastUDP(0); err == nil {
		t.Error("shared bind to port 0 should fail")
	}
}

func TestSharedMulticastManyBinders(t *testing.T) {
	n := newTestNet(t, Config{})
	a := n.MustAddHost("a", "10.0.0.1")
	const group, port = "239.0.0.9", 1900

	var conns []netapi.PacketConn
	for i := 0; i < 3; i++ {
		c, err := a.ListenMulticastUDP(port)
		if err != nil {
			t.Fatalf("binder %d: %v", i, err)
		}
		if err := c.JoinGroup(group); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := send.WriteTo([]byte("x"), Addr{IP: group, Port: port}); err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		if _, err := c.Recv(time.Second); err != nil {
			t.Errorf("binder %d missed multicast: %v", i, err)
		}
	}
}

func TestSleepPreciseAccuracy(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts wall-clock precision")
	}
	// The experiments depend on sub-millisecond delay fidelity; allow
	// generous absolute error but catch millisecond-scale overshoot.
	for _, d := range []time.Duration{200 * time.Microsecond, 1 * time.Millisecond, 5 * time.Millisecond} {
		start := time.Now()
		SleepPrecise(d)
		got := time.Since(start)
		if got < d {
			t.Errorf("SleepPrecise(%v) woke early after %v", d, got)
		}
		if got > d+800*time.Microsecond {
			t.Errorf("SleepPrecise(%v) overshot to %v", d, got)
		}
	}
	SleepPrecise(0)  // no-op
	SleepPrecise(-1) // no-op
}

func TestSchedulerSubMillisecondDelivery(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts wall-clock precision")
	}
	n := newTestNet(t, Config{LANLatency: 300 * time.Microsecond})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")
	recv, err := b.ListenUDP(9)
	if err != nil {
		t.Fatal(err)
	}
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	var worst time.Duration
	for i := 0; i < 20; i++ {
		start := time.Now()
		if err := send.WriteTo([]byte{1}, Addr{IP: "10.0.0.2", Port: 9}); err != nil {
			t.Fatal(err)
		}
		if _, err := recv.Recv(time.Second); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if elapsed < 300*time.Microsecond {
			t.Fatalf("delivered before the link delay: %v", elapsed)
		}
		if elapsed > worst {
			worst = elapsed
		}
	}
	if worst > 2*time.Millisecond {
		t.Errorf("worst sub-ms delivery took %v; scheduler precision lost", worst)
	}
}

func TestTCPLargeTransferOrdering(t *testing.T) {
	// A big write followed by small writes and a close must arrive in
	// order: the FIN may not overtake data despite its smaller link
	// delay (the send-clock invariant).
	n := newTestNet(t, Config{LANLatency: 200 * time.Microsecond, BandwidthBps: 10_000_000})
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")
	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		s, err := l.Accept()
		if err != nil {
			return
		}
		var all []byte
		buf := make([]byte, 4096)
		for {
			nr, err := s.Read(buf)
			all = append(all, buf[:nr]...)
			if err != nil {
				break
			}
		}
		got <- all
	}()
	s, err := a.DialTCP(Addr{IP: "10.0.0.2", Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 20_000)
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := s.Write(big); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	all := <-got
	if len(all) != len(big)+4 {
		t.Fatalf("received %d bytes, want %d (EOF overtook data?)", len(all), len(big)+4)
	}
	if string(all[len(big):]) != "tail" {
		t.Error("segments reordered")
	}
}
