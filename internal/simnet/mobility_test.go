package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"indiss/internal/netapi"
)

func TestMoveRehomesMulticast(t *testing.T) {
	n, ha, hb, _ := chain3(t)

	const group = "239.0.0.1"
	onA, err := ha.ListenUDP(7000)
	if err != nil {
		t.Fatal(err)
	}
	if err := onA.JoinGroup(group); err != nil {
		t.Fatal(err)
	}
	onB, err := hb.ListenUDP(7000)
	if err != nil {
		t.Fatal(err)
	}
	if err := onB.JoinGroup(group); err != nil {
		t.Fatal(err)
	}
	roamer := n.MustAddHostOn("roamer", "10.0.1.99", "A")
	sender, err := roamer.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}

	// On A: the group send lands on A's listener, never B's.
	if err := sender.WriteTo([]byte("from-A"), Addr{IP: group, Port: 7000}); err != nil {
		t.Fatal(err)
	}
	if dg, err := recvOne(t, onA, time.Second); err != nil || string(dg.Payload) != "from-A" {
		t.Fatalf("recv on A: %q, %v", dg.Payload, err)
	}
	if _, err := recvOne(t, onB, 50*time.Millisecond); err == nil {
		t.Fatal("multicast crossed into B before the move")
	}

	// Roam to B: the very next send is scoped to B only.
	if err := roamer.Move("B"); err != nil {
		t.Fatal(err)
	}
	if seg := roamer.Segment(); seg != "B" {
		t.Fatalf("Segment() = %q after move, want B", seg)
	}
	if err := sender.WriteTo([]byte("from-B"), Addr{IP: group, Port: 7000}); err != nil {
		t.Fatal(err)
	}
	if dg, err := recvOne(t, onB, time.Second); err != nil || string(dg.Payload) != "from-B" {
		t.Fatalf("recv on B: %q, %v", dg.Payload, err)
	}
	if _, err := recvOne(t, onA, 50*time.Millisecond); err == nil {
		t.Fatal("multicast still landing on A after the move")
	}
}

func TestMoveResetsStreamsAndValidates(t *testing.T) {
	n, ha, hb, _ := chain3(t)

	l, err := hb.ListenTCP(6000)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan netapi.Stream, 1)
	go func() {
		st, err := l.Accept()
		if err == nil {
			accepted <- st
		}
	}()
	st, err := ha.DialTCP(Addr{IP: hb.IP(), Port: 6000})
	if err != nil {
		t.Fatal(err)
	}
	peer := <-accepted

	// Handover: the mover's established stream resets abruptly — both
	// ends see EOF, like a crash.
	if err := ha.Move("C"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := st.Read(buf); err == nil {
		t.Fatal("mover's stream survived the handover")
	}
	peer.SetReadTimeout(time.Second)
	if _, err := peer.Read(buf); err == nil {
		t.Fatal("peer's end survived the handover")
	}

	// Bindings survive: the same conn re-dials from the new segment.
	st2, err := ha.DialTCP(Addr{IP: hb.IP(), Port: 6000})
	if err != nil {
		t.Fatalf("re-dial after move: %v", err)
	}
	st2.Close()

	// Validation: unknown host, unknown segment, and the no-op move.
	if err := n.MoveHost("nobody", "A"); err == nil {
		t.Error("MoveHost(unknown host) succeeded")
	}
	if err := ha.Move("nowhere"); err == nil {
		t.Error("Move(unknown segment) succeeded")
	}
	if err := ha.Move("C"); err != nil {
		t.Errorf("no-op move: %v", err)
	}
	n.Close()
	if err := ha.Move("A"); !errors.Is(err, ErrClosed) {
		t.Errorf("move on closed network: err = %v, want ErrClosed", err)
	}
}

// TestMoveRaceAgainstTraffic hammers Move while senders unicast and
// multicast through the roaming host — the race detector is the assert.
func TestMoveRaceAgainstTraffic(t *testing.T) {
	n, ha, hb, hc := chain3(t)
	roamer := n.MustAddHostOn("roamer", "10.0.1.99", "A")
	sender, err := roamer.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := hb.ListenUDP(7000)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.JoinGroup("239.0.0.1"); err != nil {
		t.Fatal(err)
	}
	sink, err := hc.ListenUDP(7001)
	if err != nil {
		t.Fatal(err)
	}
	_ = sink

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sender.WriteTo([]byte("m"), Addr{IP: "239.0.0.1", Port: 7000})
			sender.WriteTo([]byte("u"), Addr{IP: hc.IP(), Port: 7001})
		}
	}()
	go func() {
		defer wg.Done()
		segs := []string{"A", "B", "C"}
		for i := 0; i < 200; i++ {
			if err := roamer.Move(segs[i%len(segs)]); err != nil {
				t.Errorf("move %d: %v", i, err)
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	_ = ha
}
