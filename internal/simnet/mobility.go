package simnet

import "fmt"

// Client mobility. A roaming node detaches from one multicast segment
// and re-attaches on another — the service-discovery survey's motivating
// scenario that the fault verbs in faults.go cannot express: the host
// stays up the whole time, but its point of attachment changes.
//
// The handover model is deliberately simple and pessimal for the layers
// above:
//
//   - multicast re-homes instantly: scoping is evaluated per send against
//     the host's *current* segment, so the first post-move datagram
//     already lands on (and only on) the new segment;
//   - established TCP streams reset — layer-2 handover with a new
//     attachment point does not preserve transport connections, so both
//     ends see the same abrupt reset a crash would cause, and it is the
//     application's job to re-dial;
//   - bindings survive: UDP conns, multicast memberships and listeners
//     stay registered, exactly as a laptop keeps its sockets across an
//     association change. In-flight packets deliver (or were scoped)
//     against whichever segment the host occupied when the send resolved.

// MoveHost re-homes the named host onto the named segment. Moving a host
// to its current segment is a no-op. The segment must already exist —
// roaming onto a typo fails loudly, like AddHostOn.
func (n *Network) MoveHost(name, seg string) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	h := n.names[name]
	if h == nil {
		n.mu.Unlock()
		return fmt.Errorf("simnet: unknown host %q", name)
	}
	if _, ok := n.segments[seg]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("simnet: unknown segment %q", seg)
	}
	if h.segment() == seg {
		n.mu.Unlock()
		return nil
	}
	h.seg.Store(&seg)
	n.mu.Unlock()

	// The mover's established streams break on handover. Snapshot under
	// the host mutex, reset outside it (the setCut pattern): a reset
	// wakes readers that may immediately re-dial and take h.mu.
	h.mu.Lock()
	streams := make([]*Stream, len(h.streams))
	copy(streams, h.streams)
	h.mu.Unlock()
	for _, s := range streams {
		s.reset()
	}
	return nil
}

// Move re-homes the host onto the named segment. See Network.MoveHost.
func (h *Host) Move(seg string) error {
	return h.net.MoveHost(h.name, seg)
}
