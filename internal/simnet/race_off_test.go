//go:build !race

package simnet

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
