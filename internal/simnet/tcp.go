package simnet

import (
	"fmt"
	"io"
	"sync"
	"time"

	"indiss/internal/netapi"
)

// listenBacklog bounds pending, unaccepted connections.
const listenBacklog = 64

// Listener accepts incoming TCP streams on one port of one host.
type Listener struct {
	host *Host
	port int

	mu     sync.Mutex
	closed bool

	backlog chan *Stream
	done    chan struct{}
}

// ListenTCP binds a TCP listener on the host. Port 0 picks a free
// ephemeral port.
func (h *Host) ListenTCP(port int) (netapi.Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if port == 0 {
		port = h.freePortLocked()
	} else if _, used := h.listeners[port]; used {
		return nil, fmt.Errorf("%w: tcp %d on %s", ErrPortInUse, port, h.name)
	}
	l := &Listener{
		host:    h,
		port:    port,
		backlog: make(chan *Stream, listenBacklog),
		done:    make(chan struct{}),
	}
	h.listeners[port] = l
	return l, nil
}

// Addr returns the listener's bound address.
func (l *Listener) Addr() Addr { return Addr{IP: l.host.ip, Port: l.port} }

// Accept waits for the next inbound stream. It returns ErrClosed after
// Close.
func (l *Listener) Accept() (netapi.Stream, error) {
	select {
	case s := <-l.backlog:
		return s, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// AcceptTimeout is Accept with a deadline.
func (l *Listener) AcceptTimeout(timeout time.Duration) (netapi.Stream, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case s := <-l.backlog:
		return s, nil
	case <-l.done:
		return nil, ErrClosed
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// Close stops the listener. Already-accepted streams are unaffected.
func (l *Listener) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()

	close(l.done)

	h := l.host
	h.mu.Lock()
	if h.listeners[l.port] == l {
		delete(h.listeners, l.port)
	}
	h.mu.Unlock()
}

// DialTCP opens a stream to addr, paying one connect round-trip of link
// latency (SYN + SYN-ACK). It returns ErrNoRoute if no host owns the IP
// and ErrConnRefused if nothing listens on the port.
func (h *Host) DialTCP(addr Addr) (netapi.Stream, error) {
	n := h.net
	if h.Down() {
		return nil, fmt.Errorf("%w: %s is down", ErrNoRoute, h.name)
	}
	to := n.HostByIP(addr.IP)
	if to == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, addr.IP)
	}
	if _, routed := n.resolvePath(h, to); !routed {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, addr.IP)
	}
	if to.Down() {
		// SYN into the void: a crashed host answers nothing.
		return nil, fmt.Errorf("%w: %s", ErrTimeout, addr)
	}
	to.mu.Lock()
	l := to.listeners[addr.Port]
	to.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}

	// Handshake: one full round trip before data can flow.
	rtt := 2 * n.linkDelay(h, to, 0)
	if rtt > 0 {
		SleepPrecise(rtt)
	}
	if to.Down() || h.Down() {
		// Crashed mid-handshake: the SYN-ACK never came.
		return nil, fmt.Errorf("%w: %s", ErrTimeout, addr)
	}

	local, remote := newStreamPair(h, to, addr)
	select {
	case l.backlog <- remote:
	case <-l.done:
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	h.adoptStream(local)
	to.adoptStream(remote)
	n.metrics.addTCPConn(addr.Port)
	return local, nil
}

func (h *Host) adoptStream(s *Stream) {
	h.mu.Lock()
	h.streams = append(h.streams, s)
	h.mu.Unlock()
}

// streamQueueCap bounds in-flight segments per direction.
const streamQueueCap = 256

// halfConn is one direction of a stream: a latency-delayed byte pipe.
type halfConn struct {
	mu     sync.Mutex
	buf    []byte
	closed bool // sender closed: EOF after buf drains

	arrive chan struct{} // pulsed on new data or close
}

func newHalfConn() *halfConn {
	return &halfConn{arrive: make(chan struct{}, 1)}
}

func (hc *halfConn) pulse() {
	select {
	case hc.arrive <- struct{}{}:
	default:
	}
}

func (hc *halfConn) deliver(b []byte) {
	hc.mu.Lock()
	if !hc.closed {
		hc.buf = append(hc.buf, b...)
	}
	hc.mu.Unlock()
	hc.pulse()
}

func (hc *halfConn) shutdown() {
	hc.mu.Lock()
	hc.closed = true
	hc.mu.Unlock()
	hc.pulse()
}

// read copies buffered bytes into p, blocking until data, EOF or timeout.
func (hc *halfConn) read(p []byte, timeout time.Duration) (int, error) {
	var timer *time.Timer
	var expiry <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		expiry = timer.C
	}
	for {
		hc.mu.Lock()
		if len(hc.buf) > 0 {
			n := copy(p, hc.buf)
			hc.buf = hc.buf[n:]
			hc.mu.Unlock()
			return n, nil
		}
		closed := hc.closed
		hc.mu.Unlock()
		if closed {
			return 0, io.EOF
		}
		select {
		case <-hc.arrive:
		case <-expiry:
			return 0, ErrTimeout
		}
	}
}

// Stream is one endpoint of an established TCP connection. It implements
// io.ReadWriteCloser. Writes are asynchronous: bytes arrive at the peer
// after the link delay, in order.
type Stream struct {
	local  *Host
	remote *Host

	localAddr  Addr
	remoteAddr Addr

	in  *halfConn // bytes arriving here
	out *halfConn // peer's in

	mu          sync.Mutex
	closed      bool
	readTimeout time.Duration
	// sendClock is when the last scheduled segment (or FIN) arrives at
	// the peer; later segments never undercut it, preserving TCP's
	// in-order delivery even though small segments have smaller link
	// delays than large ones.
	sendClock time.Time
}

// newStreamPair wires two stream endpoints together. dialer is the
// initiating host, acceptor the listening one; addr is the dialed address.
func newStreamPair(dialer, acceptor *Host, addr Addr) (local, remote *Stream) {
	a := newHalfConn()
	b := newHalfConn()
	// The dialer's ephemeral port is synthesized; it only needs to be
	// unique enough for logging.
	dialerAddr := Addr{IP: dialer.ip, Port: ephemeralBase}
	local = &Stream{
		local: dialer, remote: acceptor,
		localAddr: dialerAddr, remoteAddr: addr,
		in: a, out: b,
	}
	remote = &Stream{
		local: acceptor, remote: dialer,
		localAddr: addr, remoteAddr: dialerAddr,
		in: b, out: a,
	}
	return local, remote
}

// LocalAddr returns this endpoint's address.
func (s *Stream) LocalAddr() Addr { return s.localAddr }

// RemoteAddr returns the peer's address.
func (s *Stream) RemoteAddr() Addr { return s.remoteAddr }

// SetReadTimeout bounds every subsequent Read. Zero means block forever.
func (s *Stream) SetReadTimeout(d time.Duration) {
	s.mu.Lock()
	s.readTimeout = d
	s.mu.Unlock()
}

// Read fills p with received bytes, honouring the read timeout.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	timeout := s.readTimeout
	s.mu.Unlock()
	return s.in.read(p, timeout)
}

// Write schedules p for delivery to the peer after the link delay plus
// serialization cost. It never blocks on the network.
func (s *Stream) Write(p []byte) (int, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	body := make([]byte, len(p))
	copy(body, p)

	n := s.local.net
	path, routed := n.resolvePath(s.local, s.remote)
	if !routed {
		// The route died under the connection (partition): the segment
		// blackholes. The fault injector resets crossing streams, so
		// this only catches writes racing the cut itself.
		return len(p), nil
	}
	n.metrics.addTCPBytes(s.remoteAddr.Port, len(body))
	peer := s.out
	delay := n.linkDelayPath(s.local, s.remote, len(body), path)
	n.sched.schedule(s.arrivalTime(delay), func() { peer.deliver(body) })
	return len(p), nil
}

// arrivalTime converts a link delay into the segment's delivery instant,
// clamped to never precede earlier segments.
func (s *Stream) arrivalTime(delay time.Duration) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	at := time.Now().Add(delay)
	if at.Before(s.sendClock) {
		at = s.sendClock
	}
	s.sendClock = at
	return at
}

// Close shuts down the sending direction; the peer sees EOF after draining.
// Close is idempotent.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	// EOF must arrive after any in-flight data: the FIN rides the
	// scheduler like a normal segment and respects the send clock.
	peer := s.out
	n := s.local.net
	delay := n.linkDelay(s.local, s.remote, 0)
	n.sched.schedule(s.arrivalTime(delay), func() { peer.shutdown() })
	return nil
}
