package simnet

import (
	"time"

	"indiss/internal/netapi"
)

// spinThreshold is the window within which the scheduler (and
// SleepPrecise) spin instead of sleeping, trading CPU for the
// sub-millisecond accuracy the experiments need.
const spinThreshold = 2 * time.Millisecond

// SleepPrecise sleeps d with sub-millisecond accuracy. It delegates to
// netapi.SleepPrecise, where the implementation lives so that packages
// free of simnet (core's translation profile, the native stack cost
// models) can use the same precise clock.
func SleepPrecise(d time.Duration) { netapi.SleepPrecise(d) }
