package simnet

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// delivery is a unit of scheduled work: run fn at (or after) when. seq
// breaks ties so that packets scheduled for the same instant are delivered
// in send order, which keeps tests deterministic.
type delivery struct {
	when time.Time
	seq  uint64
	fn   func()
}

type deliveryHeap []delivery

func (h deliveryHeap) Len() int { return len(h) }

func (h deliveryHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}

func (h deliveryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *deliveryHeap) Push(x any) {
	d, ok := x.(delivery)
	if !ok {
		return
	}
	*h = append(*h, d)
}

func (h *deliveryHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	*h = old[:n-1]
	return d
}

// scheduler executes functions at future instants in (when, seq) order.
// A single goroutine drains the heap; Stop waits for it to exit, so no
// delivery fires after Stop returns.
type scheduler struct {
	mu      sync.Mutex
	pending deliveryHeap
	nextSeq uint64
	stopped bool

	wake chan struct{}
	done chan struct{}
}

func newScheduler() *scheduler {
	s := &scheduler{
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go s.run()
	return s
}

// schedule enqueues fn to run no earlier than when. If the scheduler has
// been stopped the call is a no-op, matching UDP semantics where packets
// in flight on a torn-down network simply vanish.
func (s *scheduler) schedule(when time.Time, fn func()) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	heap.Push(&s.pending, delivery{when: when, seq: s.nextSeq, fn: fn})
	s.nextSeq++
	s.mu.Unlock()

	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// stop halts the delivery goroutine and discards pending deliveries.
func (s *scheduler) stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.stopped = true
	s.pending = nil
	s.mu.Unlock()

	select {
	case s.wake <- struct{}{}:
	default:
	}
	<-s.done
}

func (s *scheduler) run() {
	defer close(s.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()

	for {
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			<-s.wake
			continue
		}
		now := time.Now()
		next := s.pending[0].when
		if next.After(now) {
			s.mu.Unlock()
			wait := next.Sub(now)
			if wait <= spinThreshold {
				// Spin for sub-millisecond precision; timer
				// granularity would distort the experiments'
				// microsecond-scale latencies.
				for time.Now().Before(next) {
					select {
					case <-s.wake:
						// An earlier delivery may have been
						// scheduled; recheck the heap.
						next = time.Now()
					default:
						runtime.Gosched()
					}
				}
				continue
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait - spinThreshold)
			select {
			case <-timer.C:
			case <-s.wake:
			}
			continue
		}
		d, ok := heap.Pop(&s.pending).(delivery)
		s.mu.Unlock()
		if ok {
			d.fn()
		}
	}
}
