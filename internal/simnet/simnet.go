package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Sentinel errors returned by network operations.
var (
	ErrClosed        = errors.New("simnet: closed")
	ErrPortInUse     = errors.New("simnet: port already in use")
	ErrNoRoute       = errors.New("simnet: no route to host")
	ErrConnRefused   = errors.New("simnet: connection refused")
	ErrTimeout       = errors.New("simnet: i/o timeout")
	ErrDuplicateHost = errors.New("simnet: duplicate host")
)

// Config fixes the physical characteristics of a simulated network.
// The zero value is usable and models an instantaneous, lossless fabric,
// which is what most unit tests want.
type Config struct {
	// LANLatency is the one-way propagation delay between two distinct
	// hosts. The paper's 10 Mb/s LAN is modelled with 250µs.
	LANLatency time.Duration

	// LoopbackLatency is the one-way delay between two endpoints on the
	// same host (the "local traffic" of paper Figures 8–9).
	LoopbackLatency time.Duration

	// BandwidthBps, when non-zero, adds a serialization cost of
	// len(payload)*8/BandwidthBps seconds to every inter-host packet.
	BandwidthBps int64

	// LossRate is the probability in [0,1) that an inter-host UDP
	// datagram is silently dropped. Loopback and TCP traffic is never
	// dropped (TCP models a reliable transport).
	LossRate float64

	// Seed makes loss injection reproducible. Zero selects a fixed
	// default seed, keeping runs deterministic by default.
	Seed int64
}

// LAN10Mbps returns the testbed configuration used by the paper-shape
// experiments: a 10 Mb/s LAN with 250µs one-way latency and fast loopback.
func LAN10Mbps() Config {
	return Config{
		LANLatency:      250 * time.Microsecond,
		LoopbackLatency: 10 * time.Microsecond,
		BandwidthBps:    10_000_000,
	}
}

// Network is an in-process internetwork of hosts. All methods are safe for
// concurrent use. Close tears the network down and stops its scheduler.
type Network struct {
	cfg Config

	mu      sync.Mutex
	hosts   map[string]*Host // keyed by IP
	names   map[string]*Host // keyed by name
	closed  bool
	rng     *rand.Rand
	metrics *Metrics

	sched *scheduler
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		cfg:     cfg,
		hosts:   make(map[string]*Host),
		names:   make(map[string]*Host),
		rng:     rand.New(rand.NewSource(seed)),
		metrics: newMetrics(),
		sched:   newScheduler(),
	}
}

// Close shuts the network down. In-flight packets are discarded and all
// conns, listeners and streams are closed.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	n.mu.Unlock()

	for _, h := range hosts {
		h.close()
	}
	n.sched.stop()
}

// Metrics exposes the network's traffic counters.
func (n *Network) Metrics() *Metrics { return n.metrics }

// Config returns the network's physical configuration.
func (n *Network) Config() Config { return n.cfg }

// AddHost registers a host with a unique name and IP.
func (n *Network) AddHost(name, ip string) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.hosts[ip]; dup {
		return nil, fmt.Errorf("%w: ip %s", ErrDuplicateHost, ip)
	}
	if _, dup := n.names[name]; dup {
		return nil, fmt.Errorf("%w: name %s", ErrDuplicateHost, name)
	}
	h := &Host{
		net:       n,
		name:      name,
		ip:        ip,
		udp:       make(map[int]*UDPConn),
		mcast:     make(map[int][]*UDPConn),
		listeners: make(map[int]*Listener),
	}
	n.hosts[ip] = h
	n.names[name] = h
	return h, nil
}

// MustAddHost is AddHost for tests and examples where a duplicate host is a
// programming error.
func (n *Network) MustAddHost(name, ip string) *Host {
	h, err := n.AddHost(name, ip)
	if err != nil {
		panic(err)
	}
	return h
}

// HostByIP returns the host owning ip, or nil.
func (n *Network) HostByIP(ip string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[ip]
}

// HostByName returns the named host, or nil.
func (n *Network) HostByName(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.names[name]
}

// Hosts returns a snapshot of all hosts.
func (n *Network) Hosts() []*Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	return out
}

// linkDelay computes the one-way delay for a payload of size bytes between
// two hosts, applying propagation latency plus serialization cost.
func (n *Network) linkDelay(from, to *Host, size int) time.Duration {
	if from == to {
		return n.cfg.LoopbackLatency
	}
	d := n.cfg.LANLatency
	if n.cfg.BandwidthBps > 0 {
		d += time.Duration(int64(size) * 8 * int64(time.Second) / n.cfg.BandwidthBps)
	}
	return d
}

// dropPacket applies loss injection to an inter-host datagram.
func (n *Network) dropPacket(from, to *Host) bool {
	if n.cfg.LossRate <= 0 || from == to {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64() < n.cfg.LossRate
}

// Host is a network node: one IP, a set of bound UDP ports and TCP
// listeners.
type Host struct {
	net  *Network
	name string
	ip   string

	mu        sync.Mutex
	udp       map[int]*UDPConn
	mcast     map[int][]*UDPConn // shared multicast-only binders per port
	listeners map[int]*Listener
	streams   []*Stream
	closed    bool
}

// Name returns the host's symbolic name.
func (h *Host) Name() string { return h.name }

// IP returns the host's address.
func (h *Host) IP() string { return h.ip }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

func (h *Host) close() {
	h.mu.Lock()
	conns := make([]*UDPConn, 0, len(h.udp))
	for _, c := range h.udp {
		conns = append(conns, c)
	}
	for _, list := range h.mcast {
		conns = append(conns, list...)
	}
	listeners := make([]*Listener, 0, len(h.listeners))
	for _, l := range h.listeners {
		listeners = append(listeners, l)
	}
	streams := make([]*Stream, len(h.streams))
	copy(streams, h.streams)
	h.closed = true
	h.mu.Unlock()

	for _, c := range conns {
		c.Close()
	}
	for _, l := range listeners {
		l.Close()
	}
	for _, s := range streams {
		s.Close()
	}
}
