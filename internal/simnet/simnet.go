package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"indiss/internal/netapi"
)

// Sentinel errors returned by network operations. The transport-level
// ones are netapi's, shared with every other Stack implementation so
// callers match the same sentinel regardless of fabric.
var (
	ErrClosed        = netapi.ErrClosed
	ErrPortInUse     = netapi.ErrPortInUse
	ErrNoRoute       = netapi.ErrNoRoute
	ErrConnRefused   = netapi.ErrConnRefused
	ErrTimeout       = netapi.ErrTimeout
	ErrDuplicateHost = errors.New("simnet: duplicate host")
)

// Config fixes the physical characteristics of a simulated network.
// The zero value is usable and models an instantaneous, lossless fabric,
// which is what most unit tests want.
type Config struct {
	// LANLatency is the one-way propagation delay between two distinct
	// hosts. The paper's 10 Mb/s LAN is modelled with 250µs.
	LANLatency time.Duration

	// LoopbackLatency is the one-way delay between two endpoints on the
	// same host (the "local traffic" of paper Figures 8–9).
	LoopbackLatency time.Duration

	// BandwidthBps, when non-zero, adds a serialization cost of
	// len(payload)*8/BandwidthBps seconds to every inter-host packet.
	BandwidthBps int64

	// LossRate is the probability in [0,1] that an inter-host UDP
	// datagram is silently dropped. Loopback and TCP traffic is never
	// dropped (TCP models a reliable transport).
	LossRate float64

	// Seed makes loss injection reproducible. Zero selects a fixed
	// default seed, keeping runs deterministic by default.
	Seed int64
}

// LAN10Mbps returns the testbed configuration used by the paper-shape
// experiments: a 10 Mb/s LAN with 250µs one-way latency and fast loopback.
func LAN10Mbps() Config {
	return Config{
		LANLatency:      250 * time.Microsecond,
		LoopbackLatency: 10 * time.Microsecond,
		BandwidthBps:    10_000_000,
	}
}

// Network is an in-process internetwork of hosts. All methods are safe for
// concurrent use. Close tears the network down and stops its scheduler.
type Network struct {
	cfg Config

	mu       sync.Mutex
	hosts    map[string]*Host // keyed by IP
	names    map[string]*Host // keyed by name
	segments map[string]*segment
	links    map[string]map[string]Link // segment → segment → link
	cuts     map[string]struct{}        // partitioned segment pairs (faults.go)
	routes   map[string][]Link          // "from\x00to" → path cache (nil = no route)
	closed   bool
	rng      *rand.Rand
	metrics  *Metrics

	sched *scheduler
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		cfg:      cfg,
		hosts:    make(map[string]*Host),
		names:    make(map[string]*Host),
		segments: make(map[string]*segment),
		links:    make(map[string]map[string]Link),
		rng:      rand.New(rand.NewSource(seed)),
		metrics:  newMetrics(),
		sched:    newScheduler(),
	}
}

// Close shuts the network down. In-flight packets are discarded and all
// conns, listeners and streams are closed.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	n.mu.Unlock()

	for _, h := range hosts {
		h.close()
	}
	n.sched.stop()
}

// Metrics exposes the network's traffic counters.
func (n *Network) Metrics() *Metrics { return n.metrics }

// Config returns the network's physical configuration.
func (n *Network) Config() Config { return n.cfg }

// AddHost registers a host with a unique name and IP on the default
// segment — the implicit single LAN of pre-segment callers.
func (n *Network) AddHost(name, ip string) (*Host, error) {
	return n.AddHostOn(name, ip, DefaultSegment)
}

// addHostLocked registers a host on the named segment. Requires n.mu.
// The default segment is created on demand; any other segment must have
// been declared first, so a topology typo fails loudly.
func (n *Network) addHostLocked(name, ip, seg string) (*Host, error) {
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.segments[seg]; !ok {
		if seg != DefaultSegment {
			return nil, fmt.Errorf("simnet: unknown segment %q", seg)
		}
		n.segments[seg] = &segment{name: seg}
	}
	if _, dup := n.hosts[ip]; dup {
		return nil, fmt.Errorf("%w: ip %s", ErrDuplicateHost, ip)
	}
	if _, dup := n.names[name]; dup {
		return nil, fmt.Errorf("%w: name %s", ErrDuplicateHost, name)
	}
	h := &Host{
		net:       n,
		name:      name,
		ip:        ip,
		udp:       make(map[int]*UDPConn),
		mcast:     make(map[int][]*UDPConn),
		listeners: make(map[int]*Listener),
	}
	h.seg.Store(&seg)
	n.hosts[ip] = h
	n.names[name] = h
	return h, nil
}

// MustAddHost is AddHost for tests and examples where a duplicate host is a
// programming error.
func (n *Network) MustAddHost(name, ip string) *Host {
	h, err := n.AddHost(name, ip)
	if err != nil {
		panic(err)
	}
	return h
}

// HostByIP returns the host owning ip, or nil.
func (n *Network) HostByIP(ip string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[ip]
}

// HostByName returns the named host, or nil.
func (n *Network) HostByName(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.names[name]
}

// Hosts returns a snapshot of all hosts.
func (n *Network) Hosts() []*Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	return out
}

// resolvePath returns the inter-segment link path between two hosts
// (nil within one segment) and whether unicast traffic can flow at all.
// Senders resolve once per datagram and feed the path to the
// delay/loss helpers below, so one send takes the network mutex at most
// twice (route-cache hit + loss rng) instead of once per helper.
func (n *Network) resolvePath(from, to *Host) ([]Link, bool) {
	fs, ts := from.segment(), to.segment()
	if fs == ts {
		return nil, true
	}
	return n.route(fs, ts)
}

// linkDelayPath computes the one-way delay for a payload of size bytes:
// propagation latency plus serialization cost on the local LAN leg, and
// the latency and serialization cost of every link on a resolved
// cross-segment path.
func (n *Network) linkDelayPath(from, to *Host, size int, path []Link) time.Duration {
	if from == to {
		return n.cfg.LoopbackLatency
	}
	d := n.cfg.LANLatency
	if n.cfg.BandwidthBps > 0 {
		d += time.Duration(int64(size) * 8 * int64(time.Second) / n.cfg.BandwidthBps)
	}
	for _, l := range path {
		d += l.Latency
		if l.BandwidthBps > 0 {
			d += time.Duration(int64(size) * 8 * int64(time.Second) / l.BandwidthBps)
		}
	}
	return d
}

// linkDelay is linkDelayPath with the path resolved on the spot — for
// callers without one at hand (TCP stream writes). An unconnected pair
// degenerates to the plain LAN delay; reachability was checked at dial
// time.
func (n *Network) linkDelay(from, to *Host, size int) time.Duration {
	path, _ := n.resolvePath(from, to)
	return n.linkDelayPath(from, to, size, path)
}

// dropPacketPath applies loss injection to an inter-host datagram: the
// segment's own LossRate for the LAN leg, plus one independent draw per
// link of the resolved cross-segment path.
func (n *Network) dropPacketPath(from, to *Host, path []Link) bool {
	if from == to {
		return false
	}
	if n.cfg.LossRate <= 0 {
		lossy := false
		for _, l := range path {
			if l.LossRate > 0 {
				lossy = true
				break
			}
		}
		if !lossy {
			return false
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		return true
	}
	for _, l := range path {
		if l.LossRate > 0 && n.rng.Float64() < l.LossRate {
			return true
		}
	}
	return false
}

// dropPacket is dropPacketPath for same-segment traffic (multicast, which
// never crosses a boundary).
func (n *Network) dropPacket(from, to *Host) bool {
	return n.dropPacketPath(from, to, nil)
}

// Host is a network node: one IP, a set of bound UDP ports and TCP
// listeners.
type Host struct {
	net  *Network
	name string
	ip   string
	seg  atomic.Pointer[string] // current segment; swapped by Move

	mu        sync.Mutex
	udp       map[int]*UDPConn
	mcast     map[int][]*UDPConn // shared multicast-only binders per port
	listeners map[int]*Listener
	streams   []*Stream
	closed    bool
	down      bool // crashed (faults.go); bindings survive, traffic drops
}

// Name returns the host's symbolic name.
func (h *Host) Name() string { return h.name }

// IP returns the host's address.
func (h *Host) IP() string { return h.ip }

// Segment returns the name of the multicast segment the host lives on.
func (h *Host) Segment() string { return h.segment() }

// segment loads the current segment name. Senders read it per packet,
// racing against Move's swap; either value is a coherent answer (the
// packet left just before or just after the handover).
func (h *Host) segment() string { return *h.seg.Load() }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

func (h *Host) close() {
	h.mu.Lock()
	conns := make([]*UDPConn, 0, len(h.udp))
	for _, c := range h.udp {
		conns = append(conns, c)
	}
	for _, list := range h.mcast {
		conns = append(conns, list...)
	}
	listeners := make([]*Listener, 0, len(h.listeners))
	for _, l := range h.listeners {
		listeners = append(listeners, l)
	}
	streams := make([]*Stream, len(h.streams))
	copy(streams, h.streams)
	h.closed = true
	h.mu.Unlock()

	for _, c := range conns {
		c.Close()
	}
	for _, l := range listeners {
		l.Close()
	}
	for _, s := range streams {
		s.Close()
	}
}
