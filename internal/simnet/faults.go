package simnet

import (
	"fmt"
	"time"
)

// Runtime fault injection. The builders in segment.go fix a topology's
// *healthy* shape; the methods here mutate a live network while traffic
// flows — the volatile-environment half of the paper's claim that
// discovery keeps working on networks that are anything but healthy.
// Everything is safe against concurrent sends, dials and deliveries:
// link state is guarded by the network mutex (and the route cache is
// invalidated on every change), host liveness by the host mutex, and
// packets already in flight consult the then-current state at delivery
// time, so a fault takes effect mid-flight exactly like a yanked cable.

// pairKey normalizes an unordered segment pair.
func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}

// SetLink mutates a live inter-segment link's characteristics (latency,
// bandwidth, loss). The segments must already be linked. Packets in
// flight keep the profile they were launched with; everything sent after
// the call pays the new one.
func (n *Network) SetLink(a, b string, l Link) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if _, ok := n.links[a][b]; !ok {
		return fmt.Errorf("simnet: segments %q and %q are not linked", a, b)
	}
	n.links[a][b] = l
	n.links[b][a] = l
	n.routes = nil // cached paths embed the old Link values
	return nil
}

// GetLink returns the current link profile between two segments.
func (n *Network) GetLink(a, b string) (Link, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[a][b]
	return l, ok
}

// Partition takes the direct link between two segments administratively
// down: no unicast traffic traverses it, and routed paths re-converge
// around it if the topology offers a detour (in a chain there is none —
// the far side becomes unreachable, a true partition). The segments must
// be linked. Partitioning twice is a no-op; Heal restores the link.
// Multicast is unaffected: it never crossed segments to begin with.
func (n *Network) Partition(a, b string) error {
	return n.setCut(a, b, true)
}

// Heal restores a partitioned link. Healing a healthy link is a no-op.
func (n *Network) Heal(a, b string) error {
	return n.setCut(a, b, false)
}

// Partitioned reports whether the link between two segments is down.
func (n *Network) Partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, cut := n.cuts[pairKey(a, b)]
	return cut
}

func (n *Network) setCut(a, b string, cut bool) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if _, ok := n.links[a][b]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("simnet: segments %q and %q are not linked", a, b)
	}
	key := pairKey(a, b)
	if cut {
		if n.cuts == nil {
			n.cuts = make(map[string]struct{})
		}
		n.cuts[key] = struct{}{}
	} else {
		delete(n.cuts, key)
	}
	n.routes = nil
	var hosts []*Host
	if cut {
		hosts = make([]*Host, 0, len(n.hosts))
		for _, h := range n.hosts {
			hosts = append(hosts, h)
		}
	}
	n.mu.Unlock()

	if !cut {
		return nil
	}
	// Established TCP streams whose endpoints lost their route break:
	// the connection stalls, retransmissions die on the cut link, and
	// both ends eventually reset — the simulation fast-forwards to the
	// reset. Streams still routed (a mesh detour exists) are untouched.
	for _, h := range hosts {
		h.mu.Lock()
		streams := make([]*Stream, len(h.streams))
		copy(streams, h.streams)
		h.mu.Unlock()
		for _, s := range streams {
			if _, routed := n.resolvePath(s.local, s.remote); !routed {
				s.reset()
			}
		}
	}
	return nil
}

// cutLocked reports whether the link between two segments is down.
// Requires n.mu.
func (n *Network) cutLocked(a, b string) bool {
	_, cut := n.cuts[pairKey(a, b)]
	return cut
}

// SetHostDown crashes (down=true) or revives (down=false) a host by
// name. See Host.SetDown for the semantics.
func (n *Network) SetHostDown(name string, down bool) error {
	h := n.HostByName(name)
	if h == nil {
		return fmt.Errorf("simnet: unknown host %q", name)
	}
	h.SetDown(down)
	return nil
}

// SetDown crashes or revives the host. While down, the host is exactly a
// machine with its power cord pulled:
//
//   - packets in flight toward it are dropped at delivery time;
//   - its own sends vanish (the NIC is dead);
//   - established TCP streams touching it break — both endpoints see EOF,
//     as after the peer's retransmissions give up;
//   - dialing it times out (SYN into the void), dialing from it fails.
//
// What survives is the host's *bindings*: UDP conns, multicast
// memberships and TCP listeners stay registered, so when the host comes
// back up the processes that held them resume service without rebinding —
// a transient outage, not a teardown. A full crash-and-restart of the
// software on the host is modelled on top: take the host down, close the
// old instance (its farewell traffic is dropped, as a real crash sends
// none), bring the host up, deploy afresh.
func (h *Host) SetDown(down bool) {
	h.mu.Lock()
	if h.down == down {
		h.mu.Unlock()
		return
	}
	h.down = down
	var streams []*Stream
	if down {
		streams = make([]*Stream, len(h.streams))
		copy(streams, h.streams)
	}
	h.mu.Unlock()

	// A crash severs connections abruptly: no FIN riding the link delay,
	// both directions shut immediately.
	for _, s := range streams {
		s.reset()
	}
}

// Down reports whether the host is currently crashed.
func (h *Host) Down() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

// reset severs the stream abruptly (host crash): both half-connections
// shut down at once, so each endpoint's reads drain and then EOF, writes
// from this endpoint fail, and writes from the peer are silently
// discarded — TCP until the retransmission timeout, without the wait.
func (s *Stream) reset() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.in.shutdown()
	s.out.shutdown()
}

// Flap takes the host down for d, then brings it back — a convenience
// for scripted outage windows. It blocks for the outage duration.
func (h *Host) Flap(d time.Duration) {
	h.SetDown(true)
	time.Sleep(d)
	h.SetDown(false)
}
