// Package simnet is an in-process IP network simulator used as the testbed
// substrate for the INDISS reproduction.
//
// The paper's evaluation (§4.3) ran on two workstations connected by a
// 10 Mb/s LAN. simnet reproduces the properties that matter for those
// experiments — message counts, multicast group semantics, ordering, and
// relative link costs — without real sockets, so the whole testbed runs
// deterministically inside one process:
//
//   - Hosts own IP addresses and bind UDP conns and TCP listeners to ports.
//   - UDP supports unicast and multicast with explicit group membership,
//     mirroring the IGMP joins that SDP monitors rely on (paper §2.1).
//   - TCP is a reliable byte stream with a connect round-trip, used by the
//     UPnP description and control servers.
//   - Every packet pays propagation latency plus a serialization cost
//     derived from the configured bandwidth, so a 10 Mb/s LAN can be
//     modelled faithfully.
//   - Loss injection and per-port traffic metering support the failure
//     tests and the traffic-threshold adaptation of paper §4.2.
//
// All delivery is driven by a single scheduler goroutine per Network, which
// keeps same-instant deliveries in send order and makes tests reproducible.
package simnet
