package simnet

import "indiss/internal/netapi"

// simnet is the simulated netapi backend: *Host is a netapi.Stack, and
// the concrete conn types satisfy the corresponding netapi interfaces.
// The assertions below keep the contract from silently eroding.
var (
	_ netapi.Stack      = (*Host)(nil)
	_ netapi.PacketConn = (*UDPConn)(nil)
	_ netapi.Listener   = (*Listener)(nil)
	_ netapi.Stream     = (*Stream)(nil)
)
