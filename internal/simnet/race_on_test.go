//go:build race

package simnet

// raceEnabled reports that the race detector instruments this build;
// timing-precision assertions are skipped since instrumentation slows
// wall-clock-sensitive paths by an order of magnitude.
const raceEnabled = true
