package core

import (
	"testing"
	"time"
)

func recAt(origin SDP, kind, url string, ttl time.Duration) ServiceRecord {
	return ServiceRecord{
		Origin:  origin,
		Kind:    kind,
		URL:     url,
		Attrs:   map[string]string{},
		Expires: time.Now().Add(ttl),
	}
}

func nextDelta(t *testing.T, ch <-chan Delta) Delta {
	t.Helper()
	select {
	case d := <-ch:
		return d
	case <-time.After(2 * time.Second):
		t.Fatal("no delta delivered")
		return Delta{}
	}
}

func TestViewDeltaPutRemove(t *testing.T) {
	v := NewServiceView()
	ch, cancel := v.SubscribeDeltas(16)
	defer cancel()

	v.Put(recAt(SDPSLP, "clock", "service:clock://10.0.0.2:4005", time.Hour))
	d := nextDelta(t, ch)
	if d.Op != DeltaPut || d.Record.URL != "service:clock://10.0.0.2:4005" {
		t.Fatalf("delta = %+v, want Put of the record", d)
	}

	v.Remove(SDPSLP, "service:clock://10.0.0.2:4005")
	d = nextDelta(t, ch)
	if d.Op != DeltaRemove || d.Record.Kind != "clock" {
		t.Fatalf("delta = %+v, want Remove carrying the record", d)
	}
}

func TestViewDeltaExpire(t *testing.T) {
	v := NewServiceView()
	ch, cancel := v.SubscribeDeltas(16)
	defer cancel()

	v.Put(recAt(SDPUPnP, "clock", "soap://10.0.0.2:4004", 10*time.Millisecond))
	if d := nextDelta(t, ch); d.Op != DeltaPut {
		t.Fatalf("first delta = %+v", d)
	}
	time.Sleep(20 * time.Millisecond)
	// Any touch sweeps the due shard.
	v.Find("clock", time.Now())
	d := nextDelta(t, ch)
	if d.Op != DeltaExpire || d.Record.URL != "soap://10.0.0.2:4004" {
		t.Fatalf("delta = %+v, want Expire of the record", d)
	}
}

func TestViewDeltaCancelAndNoSubscribers(t *testing.T) {
	v := NewServiceView()
	ch, cancel := v.SubscribeDeltas(4)
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("cancelled channel not closed")
	}
	// With nobody subscribed the mutating paths must not block or panic.
	v.Put(recAt(SDPSLP, "clock", "u1", time.Hour))
	v.Remove(SDPSLP, "u1")
}

func TestViewDeltaSlowSubscriberDropsNotBlocks(t *testing.T) {
	v := NewServiceView()
	_, cancel := v.SubscribeDeltas(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			v.Put(recAt(SDPSLP, "clock", "u", time.Hour))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Put blocked on a full delta subscriber")
	}
}

func TestViewGet(t *testing.T) {
	v := NewServiceView()
	if _, ok := v.Get(SDPSLP, "missing"); ok {
		t.Fatal("Get found a missing record")
	}
	v.Put(recAt(SDPSLP, "clock", "u1", time.Hour))
	rec, ok := v.Get(SDPSLP, "u1")
	if !ok || rec.Kind != "clock" {
		t.Fatalf("Get = %+v, %v", rec, ok)
	}
	v.Put(recAt(SDPSLP, "clock", "u2", -time.Second))
	if _, ok := v.Get(SDPSLP, "u2"); ok {
		t.Fatal("Get returned an expired record")
	}
}

func TestFindForeignPrefersLocalOverRemote(t *testing.T) {
	v := NewServiceView()
	remote := recAt(SDPUPnP, "clock", "soap://10.0.3.2:4004", time.Hour)
	remote.Remote = true
	remote.OriginGW = "gw-c"
	remote.Hops = 2
	v.Put(remote)
	local := recAt(SDPUPnP, "clock", "soap://10.0.1.2:4004", time.Hour)
	v.Put(local)

	recs := v.FindForeign(SDPSLP, "clock", time.Now())
	if len(recs) != 2 {
		t.Fatalf("FindForeign returned %d records", len(recs))
	}
	if recs[0].Remote || !recs[1].Remote {
		t.Fatalf("local record not preferred: %+v", recs)
	}
	if recs[1].OriginGW != "gw-c" || recs[1].Hops != 2 {
		t.Fatalf("provenance lost through the view: %+v", recs[1])
	}

	// Find (non-foreign path) keeps the historical URL ordering.
	all := v.Find("clock", time.Now())
	if len(all) != 2 || all[0].URL > all[1].URL {
		t.Fatalf("Find ordering changed: %+v", all)
	}
}
