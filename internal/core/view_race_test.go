package core

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestServiceViewConcurrent exercises the sharded view under concurrent
// Put/Find/FindForeign/Remove with aggressive expiry, the interleavings
// `go test -race` must prove safe across the per-shard RWMutexes, the
// global key index and the lazy expiry sweep.
func TestServiceViewConcurrent(t *testing.T) {
	v := NewServiceView()
	kinds := []string{"clock", "printer", "Camera", "light", ""}
	origins := []SDP{SDPSLP, SDPUPnP, SDPJini}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				kind := kinds[j%(len(kinds)-1)] // writers skip the match-all ""
				url := "svc://" + strconv.Itoa(w) + "/" + strconv.Itoa(j%16)
				ttl := time.Duration(j%3) * time.Millisecond // many expire immediately
				v.Put(ServiceRecord{
					Origin:  origins[j%len(origins)],
					Kind:    kind,
					URL:     url,
					Attrs:   map[string]string{"n": strconv.Itoa(j)},
					Expires: time.Now().Add(ttl),
				})
				if j%7 == 0 {
					v.Remove(origins[j%len(origins)], url)
				}
				if j%11 == 0 {
					// Same URL re-put under a different kind: the key must
					// migrate buckets without duplicating.
					v.Put(ServiceRecord{
						Origin:  origins[j%len(origins)],
						Kind:    kinds[(j+1)%(len(kinds)-1)],
						URL:     url,
						Expires: time.Now().Add(time.Minute),
					})
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				now := time.Now()
				for _, rec := range v.Find(kinds[j%len(kinds)], now) {
					if rec.URL == "" {
						t.Error("empty URL escaped the view")
						return
					}
				}
				v.FindForeign(origins[j%len(origins)], kinds[j%len(kinds)], now)
				v.Len()
			}
		}(r)
	}
	wg.Wait()

	// The view must still function after the storm.
	v.Put(ServiceRecord{
		Origin: SDPSLP, Kind: "final", URL: "svc://final",
		Expires: time.Now().Add(time.Minute),
	})
	if got := v.Find("final", time.Now()); len(got) != 1 {
		t.Errorf("Find(final) = %+v", got)
	}
}

// TestServiceViewKindMigration pins the single-threaded semantics the
// concurrent test relies on: re-putting a URL under a new kind moves it —
// the old kind must not keep answering for it.
func TestServiceViewKindMigration(t *testing.T) {
	v := NewServiceView()
	now := time.Now()
	v.Put(ServiceRecord{Origin: SDPSLP, Kind: "clock", URL: "svc://x", Expires: now.Add(time.Minute)})
	v.Put(ServiceRecord{Origin: SDPSLP, Kind: "watch", URL: "svc://x", Expires: now.Add(time.Minute)})
	if got := v.Find("clock", now); len(got) != 0 {
		t.Errorf("old kind still answers: %+v", got)
	}
	if got := v.Find("watch", now); len(got) != 1 {
		t.Errorf("new kind missing: %+v", got)
	}
	if v.Len() != 1 {
		t.Errorf("Len = %d, want 1 (key must not duplicate across kinds)", v.Len())
	}
}

// TestServiceViewExpirySweep checks the lazy min-heap sweep: expired
// records stop being returned immediately and are physically dropped once
// a mutating operation sweeps the shard.
func TestServiceViewExpirySweep(t *testing.T) {
	v := NewServiceView()
	start := time.Now()
	for i := 0; i < 32; i++ {
		v.Put(ServiceRecord{
			Origin:  SDPSLP,
			Kind:    "ephemeral",
			URL:     "svc://e/" + strconv.Itoa(i),
			Expires: start.Add(10 * time.Millisecond),
		})
	}
	if got := v.Find("ephemeral", start); len(got) != 32 {
		t.Fatalf("live records = %d, want 32", len(got))
	}
	later := start.Add(time.Hour)
	if got := v.Find("ephemeral", later); len(got) != 0 {
		t.Errorf("expired records still returned: %d", len(got))
	}
	// A Put (the refresher) sweeps due heap entries; wall clock is past
	// the 10ms deadlines by construction of the sleep below.
	time.Sleep(20 * time.Millisecond)
	v.Put(ServiceRecord{Origin: SDPSLP, Kind: "ephemeral", URL: "svc://keep", Expires: time.Now().Add(time.Hour)})
	if n := v.Len(); n != 1 {
		t.Errorf("Len after sweep = %d, want 1", n)
	}
}

// TestServiceViewRefreshKeepsOneHeapEntry pins the refresh behaviour: a
// service re-advertised many times (the units re-Put on every NOTIFY /
// SAAdvert) must not accumulate expiry-heap entries — refreshes re-arm
// the record's single outstanding entry instead of pushing new ones.
func TestServiceViewRefreshKeepsOneHeapEntry(t *testing.T) {
	v := NewServiceView()
	for i := 0; i < 1000; i++ {
		v.Put(ServiceRecord{
			Origin:  SDPUPnP,
			Kind:    "clock",
			URL:     "svc://x",
			Expires: time.Now().Add(time.Hour),
		})
	}
	sh := v.shardFor("clock")
	sh.mu.RLock()
	n := len(sh.expiry)
	sh.mu.RUnlock()
	if n != 1 {
		t.Errorf("expiry heap holds %d entries after 1000 refreshes, want 1", n)
	}
	// The single re-armed entry must still expire the record.
	later := time.Now().Add(2 * time.Hour)
	if got := v.Find("clock", later); len(got) != 0 {
		t.Errorf("expired record still returned: %+v", got)
	}
	if n := v.Len(); n != 0 {
		t.Errorf("Len after expiry sweep = %d, want 0", n)
	}
}

// TestServiceViewChurnKeepsHeapBounded pins the byebye/alive churn case:
// Remove→re-Put cycles of the same service must reuse the outstanding
// heap entry, not stack a new self-re-arming entry per cycle.
func TestServiceViewChurnKeepsHeapBounded(t *testing.T) {
	v := NewServiceView()
	rec := ServiceRecord{
		Origin:  SDPUPnP,
		Kind:    "clock",
		URL:     "svc://x",
		Expires: time.Now().Add(time.Hour),
	}
	for i := 0; i < 500; i++ {
		v.Put(rec)
		v.Remove(SDPUPnP, "svc://x")
	}
	v.Put(rec)
	sh := v.shardFor("clock")
	sh.mu.RLock()
	n := len(sh.expiry)
	sh.mu.RUnlock()
	if n != 1 {
		t.Errorf("expiry heap holds %d entries after 500 churn cycles, want 1", n)
	}
	if got := v.Find("clock", time.Now()); len(got) != 1 {
		t.Errorf("Find after churn = %+v", got)
	}
}

// TestServiceViewShortenedTTLReArms pins the Remove→re-Put-with-shorter-
// TTL case: the new, earlier deadline must get its own live heap entry
// (the old one becomes a discarded orphan), so the record is reclaimed at
// the short deadline instead of lingering until the old one.
func TestServiceViewShortenedTTLReArms(t *testing.T) {
	v := NewServiceView()
	now := time.Now()
	v.Put(ServiceRecord{Origin: SDPSLP, Kind: "clock", URL: "svc://x", Expires: now.Add(time.Hour)})
	v.Remove(SDPSLP, "svc://x")
	v.Put(ServiceRecord{Origin: SDPSLP, Kind: "clock", URL: "svc://x", Expires: now.Add(10 * time.Millisecond)})
	time.Sleep(20 * time.Millisecond)
	if got := v.Find("clock", time.Now()); len(got) != 0 {
		t.Fatalf("expired record returned: %+v", got)
	}
	if n := v.Len(); n != 0 {
		t.Errorf("Len = %d, want 0 (shortened deadline must re-arm the heap early)", n)
	}
}

// TestServiceViewCrossShardSweep checks the rotating maintenance sweep:
// expired records of a kind that is never written or queried again are
// still collected by Puts of unrelated kinds (which land in other
// shards), so a long-running gateway's view cannot grow without bound.
func TestServiceViewCrossShardSweep(t *testing.T) {
	v := NewServiceView()
	for i := 0; i < 8; i++ {
		v.Put(ServiceRecord{
			Origin:  SDPSLP,
			Kind:    "abandoned",
			URL:     "svc://a/" + strconv.Itoa(i),
			Expires: time.Now().Add(5 * time.Millisecond),
		})
	}
	time.Sleep(10 * time.Millisecond)
	// One rotation of unrelated Puts visits every shard at least once.
	exp := time.Now().Add(time.Hour)
	for i := 0; i < 2*viewShardCount; i++ {
		v.Put(ServiceRecord{
			Origin:  SDPUPnP,
			Kind:    "busy-" + strconv.Itoa(i),
			URL:     "svc://b/" + strconv.Itoa(i),
			Expires: exp,
		})
	}
	if n := v.Len(); n != 2*viewShardCount {
		t.Errorf("Len = %d, want %d (abandoned kind not collected)", n, 2*viewShardCount)
	}
}
