// Package core implements INDISS itself: the monitor component that
// detects service discovery protocols from raw multicast traffic (paper
// §2.1), the unit abstraction coupling a parser and a composer under a
// DFA (§2.2–2.3), the event bus composing units, the shared service view,
// the self-adaptive system that instantiates and composes units at run
// time (§3), and the configuration DSL of Figure 5a.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// SDP identifies a service discovery protocol.
type SDP string

// The SDPs of the paper's prototype and Figure 5 configuration, plus
// DNS-SD/mDNS (Zeroconf/Bonjour) — the post-paper protocol whose unit
// exercises the §2.2 claim that a new SDP costs exactly one new unit.
const (
	SDPSLP   SDP = "SLP"
	SDPUPnP  SDP = "UPnP"
	SDPJini  SDP = "JINI"
	SDPDNSSD SDP = "DNSSD"
)

// ScanPort is one entry of the monitor's static correspondence table:
// "any middleware based on IP support the monitor component, which simply
// maintains a static correspondence table between the IANA-registered
// permanent ports and their associated SDP" (paper §2.1).
type ScanPort struct {
	// Port is the IANA-registered UDP port.
	Port int
	// Groups are the multicast groups to join on that port.
	Groups []string
	// SDP is the protocol the (group, port) tag identifies.
	SDP SDP
}

// CorrespondenceTable maps ports to SDP identification tags.
type CorrespondenceTable struct {
	mu     sync.Mutex
	byPort map[int]ScanPort
}

// DefaultTable returns the correspondence table of the paper's prototype
// — SLP on 427 (plus the legacy 1846/1848 ports the paper's figures
// list), UPnP/SSDP on 1900, Jini on 4160 — extended with mDNS on 5353
// for the DNS-SD unit.
func DefaultTable() *CorrespondenceTable {
	t := NewTable()
	t.Add(ScanPort{Port: 427, Groups: []string{"239.255.255.253"}, SDP: SDPSLP})
	t.Add(ScanPort{Port: 1846, Groups: []string{"239.255.255.253"}, SDP: SDPSLP})
	t.Add(ScanPort{Port: 1848, Groups: []string{"239.255.255.253"}, SDP: SDPSLP})
	t.Add(ScanPort{Port: 1900, Groups: []string{"239.255.255.250"}, SDP: SDPUPnP})
	t.Add(ScanPort{Port: 4160, Groups: []string{"224.0.1.84", "224.0.1.85"}, SDP: SDPJini})
	t.Add(ScanPort{Port: 5353, Groups: []string{"224.0.0.251"}, SDP: SDPDNSSD})
	return t
}

// NewTable returns an empty correspondence table.
func NewTable() *CorrespondenceTable {
	return &CorrespondenceTable{byPort: make(map[int]ScanPort)}
}

// Add registers or replaces the entry for a port.
func (t *CorrespondenceTable) Add(entry ScanPort) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byPort[entry.Port] = entry
}

// Lookup resolves a port to its SDP tag. Detection "only depends on which
// port raw data arrived" (paper §2.1) — no payload inspection.
func (t *CorrespondenceTable) Lookup(port int) (ScanPort, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	entry, ok := t.byPort[port]
	return entry, ok
}

// Ports returns the registered ports in ascending order.
func (t *CorrespondenceTable) Ports() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.byPort))
	for p := range t.byPort {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Restrict returns a copy of the table containing only the given ports —
// how a Figure 5a "ScanPort = {…}" clause narrows the default table.
func (t *CorrespondenceTable) Restrict(ports []int) (*CorrespondenceTable, error) {
	out := NewTable()
	for _, p := range ports {
		entry, ok := t.Lookup(p)
		if !ok {
			return nil, fmt.Errorf("core: no SDP registered for port %d", p)
		}
		out.Add(entry)
	}
	return out, nil
}

// RateMeter measures traffic rate over a sliding window, supporting the
// §4.2 adaptation policy ("a network traffic threshold below which INDISS
// … must become active").
type RateMeter struct {
	mu      sync.Mutex
	window  time.Duration
	samples []rateSample
	total   int64
}

type rateSample struct {
	at   time.Time
	size int64
}

// NewRateMeter creates a meter with the given sliding window.
func NewRateMeter(window time.Duration) *RateMeter {
	if window <= 0 {
		window = time.Second
	}
	return &RateMeter{window: window}
}

// Observe records size bytes at time now.
func (m *RateMeter) Observe(now time.Time, size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples = append(m.samples, rateSample{at: now, size: int64(size)})
	m.total += int64(size)
	m.trim(now)
}

// Rate returns the observed bytes/second over the window ending at now.
func (m *RateMeter) Rate(now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trim(now)
	var sum int64
	for _, s := range m.samples {
		sum += s.size
	}
	return float64(sum) / m.window.Seconds()
}

// Total returns all bytes ever observed.
func (m *RateMeter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

func (m *RateMeter) trim(now time.Time) {
	cutoff := now.Add(-m.window)
	keep := m.samples[:0]
	for _, s := range m.samples {
		if s.at.After(cutoff) {
			keep = append(keep, s)
		}
	}
	m.samples = keep
}
