package core

import (
	"sort"
	"time"
)

// ViewStorage is the narrow contract the view's cold tier speaks. The
// hot read path never touches it; it is consulted only on a point-miss
// (Get/Remove of a key not in memory) and by the eviction pass. The
// System wires a log-structured implementation (internal/viewstore) in
// when a data directory is configured; without one the view runs
// memory-only exactly as before.
//
// Implementations must be safe for concurrent use and must never call
// back into the view (the view invokes them with no locks held, and
// re-entry would deadlock on the mutating paths).
type ViewStorage interface {
	// Spill durably persists the records before the view drops its
	// memory copies; an error aborts the eviction of those records.
	Spill(recs []ServiceRecord) error
	// Lookup resolves a point-miss against the cold tier.
	Lookup(origin SDP, url string, now time.Time) (ServiceRecord, bool)
	// SpilledCount reports how many live records exist only on disk.
	SpilledCount() int
}

// KindScanner is the optional ViewStorage extension the query plane
// needs: enumerate the live records of one kind that exist only in the
// cold tier. Without it, kind scans cover the memory tier only (point
// lookups still fall through via Lookup). The log-structured store
// implements it with a kind-tagged keydir, so only matching records pay
// a disk read.
type KindScanner interface {
	// ScanKind calls fn for every live spilled record of the kind
	// (case-insensitive; empty matches every kind), stopping early when
	// fn returns false. fn must not call back into the storage tier.
	ScanKind(kind string, now time.Time, fn func(ServiceRecord) bool)
}

// recSize estimates one record's resident footprint: struct, strings,
// attribute map, and its share of the bucket and key indexes. A
// heuristic, not an accountant — the budget it feeds is a soft target
// for eviction, not an allocator limit.
func recSize(r *ServiceRecord) int64 {
	n := int64(176) // struct + map slots in bucket and key index
	n += int64(len(r.Origin) + len(r.Kind) + len(r.URL)*2) // URL also keys both indexes
	n += int64(len(r.Location) + len(r.OriginGW))
	for k, v := range r.Attrs {
		n += int64(48 + len(k) + len(v))
	}
	return n
}

// AttachStorage plugs the persistent cold tier under the view and
// arms the memory budget (bytes; 0 means unbounded). Must be called
// before the view is used concurrently — the System attaches storage
// during construction, before any unit runs.
func (v *ServiceView) AttachStorage(s ViewStorage, memBudget int64) {
	v.storage = s
	v.memBudget = memBudget
	v.tiered = s != nil
	v.kindScan, _ = s.(KindScanner)
}

// ScanCold invokes fn for each live cold-tier (spilled) record of the
// kind, value copies safe to retain. A no-op when the view is
// memory-only or its storage lacks a KindScanner — then every live
// record is resident and the shard scan already saw it. The query
// plane's kind queries merge this under their answer cache, so HTTP
// clients see records the memory budget moved to disk.
func (v *ServiceView) ScanCold(kind string, now time.Time, fn func(ServiceRecord) bool) {
	if !v.tiered || v.kindScan == nil {
		return
	}
	v.kindScan.ScanKind(kind, now, fn)
}

// MemUsage returns the estimated resident bytes of the memory tier.
func (v *ServiceView) MemUsage() int64 { return v.memBytes.Load() }

// Evicted returns how many records the budget pass has spilled to the
// cold tier since the view was created.
func (v *ServiceView) Evicted() uint64 { return v.evicted.Load() }

// ColdHits returns how many point lookups were answered from the cold
// tier.
func (v *ServiceView) ColdHits() uint64 { return v.coldHits.Load() }

// touchStamp is the coarse (1s) recency grain buckets are stamped
// with: one atomic load plus a rare store on the read path, instead of
// a contended store per lookup.
func touchStamp(now time.Time) int64 { return now.Unix() }

// touchBucket records a read hit on a bucket, at coarse grain.
func (v *ServiceView) touchBucket(b *kindBucket, now time.Time) {
	if !v.tiered {
		return
	}
	if s := touchStamp(now); b.touch.Load() < s {
		b.touch.Store(s)
	}
}

// evictionBatch bounds how many records one Spill call carries, so the
// write-locked deletion pass that follows stays short.
const evictionBatch = 256

// bucketRef identifies one eviction candidate.
type bucketRef struct {
	shard int
	kind  string
	touch int64
}

// EnforceBudget spills cold remote records to the storage tier until
// the memory estimate fits the budget, coldest Find-buckets first, and
// returns how many records were spilled. Locally learned records are
// never evicted: the gateway is authoritative for them, and they are
// the ones a native answer must not miss. Eviction emits no deltas —
// spilling is invisible to the federation (the record's key and epoch
// are unchanged, only its residence moved).
//
// Called periodically by the owning System; safe to call concurrently
// with all view operations.
func (v *ServiceView) EnforceBudget(now time.Time) int {
	if !v.tiered || v.memBudget <= 0 || v.memBytes.Load() <= v.memBudget {
		return 0
	}

	// Rank buckets coldest-first under read locks.
	var refs []bucketRef
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		for lk, b := range sh.kinds {
			refs = append(refs, bucketRef{shard: i, kind: lk, touch: b.touch.Load()})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].touch < refs[j].touch })

	spilled := 0
	for _, ref := range refs {
		if v.memBytes.Load() <= v.memBudget {
			break
		}
		spilled += v.evictBucket(ref, now)
	}
	return spilled
}

// evictBucket spills one bucket's remote records in batches: copy under
// the read lock, persist with no locks held, then delete under the
// write locks only the records that did not change in between.
func (v *ServiceView) evictBucket(ref bucketRef, now time.Time) int {
	sh := &v.shards[ref.shard]
	total := 0
	for v.memBytes.Load() > v.memBudget {
		var batch []ServiceRecord
		sh.mu.RLock()
		b := sh.kinds[ref.kind]
		if b != nil {
			for _, rec := range b.recs {
				if !rec.Remote || !rec.Expires.After(now) {
					continue
				}
				batch = append(batch, rec)
				if len(batch) >= evictionBatch {
					break
				}
			}
		}
		sh.mu.RUnlock()
		if len(batch) == 0 {
			return total
		}
		if err := v.storage.Spill(batch); err != nil {
			return total // storage trouble: keep the memory copies
		}

		// Drop the spilled copies — unless a concurrent Put refreshed
		// one, in which case the memory copy is newer and stays.
		v.keysMu.Lock()
		sh.mu.Lock()
		b = sh.kinds[ref.kind]
		for i := range batch {
			rec := &batch[i]
			key := viewKey(rec.Origin, rec.URL)
			if b == nil {
				break
			}
			cur, ok := b.recs[key]
			if !ok || !cur.Expires.Equal(rec.Expires) {
				continue
			}
			v.deleteFromBucket(sh, ref.kind, key)
			b = sh.kinds[ref.kind] // deleteFromBucket may drop the bucket
			if v.keys[key] == ref.kind {
				delete(v.keys, key)
			}
			total++
		}
		sh.mu.Unlock()
		v.keysMu.Unlock()
	}
	v.evicted.Add(uint64(total))
	return total
}

// spillTotal is a helper for Len: the cold tier's live-record count,
// zero without one.
func (v *ServiceView) spillTotal() int {
	if !v.tiered {
		return 0
	}
	return v.storage.SpilledCount()
}

// coldLookup consults the storage tier after a point-miss.
func (v *ServiceView) coldLookup(origin SDP, url string, now time.Time) (ServiceRecord, bool) {
	if !v.tiered {
		return ServiceRecord{}, false
	}
	rec, ok := v.storage.Lookup(origin, url, now)
	if ok {
		v.coldHits.Add(1)
	}
	return rec, ok
}
