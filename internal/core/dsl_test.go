package core

import (
	"errors"
	"testing"
)

// figure5a is the paper's example specification, verbatim in structure.
const figure5a = `
System SDP = {
	Component Monitor = {
		ScanPort = { 1900; 1846; 4160; 427 }
	}
	Component Unit SLP(port=1846,427);
	Component Unit UPnP(port=1900);
	Component Unit JINI(port=4160);
}`

func TestParseSpecFigure5a(t *testing.T) {
	spec, err := ParseSpec(figure5a)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Name != "SDP" {
		t.Errorf("Name = %q", spec.Name)
	}
	wantPorts := []int{1900, 1846, 4160, 427}
	if len(spec.ScanPorts) != len(wantPorts) {
		t.Fatalf("ScanPorts = %v", spec.ScanPorts)
	}
	for i, p := range wantPorts {
		if spec.ScanPorts[i] != p {
			t.Errorf("ScanPorts[%d] = %d, want %d", i, spec.ScanPorts[i], p)
		}
	}
	if len(spec.Units) != 3 {
		t.Fatalf("Units = %+v", spec.Units)
	}
	if spec.Units[0].SDP != "SLP" || len(spec.Units[0].Ports) != 2 || spec.Units[0].Ports[1] != 427 {
		t.Errorf("SLP unit = %+v", spec.Units[0])
	}
	if spec.Units[1].SDP != "UPnP" || spec.Units[1].Ports[0] != 1900 {
		t.Errorf("UPnP unit = %+v", spec.Units[1])
	}
	if spec.Units[2].SDP != "JINI" || spec.Units[2].Ports[0] != 4160 {
		t.Errorf("JINI unit = %+v", spec.Units[2])
	}
}

func TestParseSpecUnitDefinition(t *testing.T) {
	// The §3 unit-definition operators.
	src := `
System SDP = {
	Component Unit UPnP = {
		setFSM(fsm, UPNP);
		AddParser(component, SSDP);
		AddParser(component, XML);
		AddComposer(component, SSDP);
	}
}`
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(spec.UnitDefs) != 1 {
		t.Fatalf("UnitDefs = %+v", spec.UnitDefs)
	}
	def := spec.UnitDefs[0]
	if def.Name != "UPnP" || def.FSM != "UPNP" {
		t.Errorf("def = %+v", def)
	}
	if len(def.Parsers) != 2 || def.Parsers[1] != "XML" {
		t.Errorf("parsers = %v", def.Parsers)
	}
	if len(def.Composers) != 1 || def.Composers[0] != "SSDP" {
		t.Errorf("composers = %v", def.Composers)
	}
}

func TestParseSpecFSMDefinition(t *testing.T) {
	// The §3 AddTuple operator, with an empty guard slot as in the
	// paper's tuple description.
	src := `
System SDP = {
	Component UPnP-FSM = {
		AddTuple(Idle, SDP_C_START, , Open);
		AddTuple(Open, SDP_SERVICE_TYPE, isClock, Matched, record, dispatch);
	}
}`
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(spec.FSMs) != 1 || spec.FSMs[0].Name != "UPnP" {
		t.Fatalf("FSMs = %+v", spec.FSMs)
	}
	tuples := spec.FSMs[0].Tuples
	if len(tuples) != 2 {
		t.Fatalf("tuples = %+v", tuples)
	}
	if tuples[0].Guard != "" || tuples[0].From != "Idle" || tuples[0].To != "Open" {
		t.Errorf("tuple 0 = %+v", tuples[0])
	}
	if tuples[1].Guard != "isClock" || len(tuples[1].Actions) != 2 || tuples[1].Actions[1] != "dispatch" {
		t.Errorf("tuple 1 = %+v", tuples[1])
	}
}

func TestParseSpecComments(t *testing.T) {
	src := `
// instance for the home gateway
System Home = {
	// scan everything
	Component Monitor = { ScanPort = { 427 } }
	Component Unit SLP(port=427); // the only unit
}`
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Name != "Home" || len(spec.Units) != 1 {
		t.Errorf("spec = %+v", spec)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"NotSystem X = {}",
		"System X = { Component Bogus = {} }",
		"System X = { Component Unit SLP(port=) ; }",
		"System X = { Component Unit SLP(port=99999); }",
		"System X = { Component Unit SLP; }",
		"System X = { Component Monitor = { ScanPort = { abc } } }",
		"System X = { Component Unit U = { badOp(a, b); } }",
		"System X = { Component Unit U = { setFSM(onlyone); } }",
		"System X = { Component F-FSM = { AddTuple(a, b); } }",
		"System X = { Component F-FSM = { NotATuple(a, b, c, d); } }",
		"System X = {",
		"System X = {} trailing",
	}
	for _, src := range bad {
		if _, err := ParseSpec(src); !errors.Is(err, ErrSpec) {
			t.Errorf("ParseSpec(%q) err = %v, want ErrSpec", src, err)
		}
	}
}

func TestSpecDrivesSystemConfig(t *testing.T) {
	// A parsed spec restricts the default table, wiring Figure 5a to a
	// runnable configuration.
	spec, err := ParseSpec(figure5a)
	if err != nil {
		t.Fatal(err)
	}
	table, err := DefaultTable().Restrict(spec.ScanPorts)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if len(table.Ports()) != 4 {
		t.Errorf("ports = %v", table.Ports())
	}
	var sdps []SDP
	for _, u := range spec.Units {
		sdps = append(sdps, u.SDP)
	}
	if len(sdps) != 3 || sdps[0] != SDPSLP || sdps[2] != SDPJini {
		t.Errorf("sdps = %v", sdps)
	}
}
