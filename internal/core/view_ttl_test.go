package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestViewTTLExpiryUnderLoad drives the sharded view with concurrent
// Find/FindForeign traffic while short-TTL records age out: every
// expired record must actually be evicted (heap sweep, not just lazily
// skipped), refreshed records must survive, and nothing may deadlock or
// race while lookups hammer the same shards the sweeps rewrite. Run
// under -race.
func TestViewTTLExpiryUnderLoad(t *testing.T) {
	v := NewServiceView()
	const kinds = 24
	const perKind = 8

	// A delta subscriber keeps the delta paths (the federation's feed)
	// active during the churn, so expiry also exercises emitDeltas.
	deltas, cancel := v.SubscribeDeltas(256)
	defer cancel()
	var expireDeltas atomic.Int64
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for d := range deltas {
			if d.Op == DeltaExpire {
				expireDeltas.Add(1)
			}
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				kind := fmt.Sprintf("kind-%d", i%kinds)
				now := time.Now()
				for _, rec := range v.Find(kind, now) {
					if !rec.Expires.After(now) {
						t.Errorf("Find returned expired record %s", rec.URL)
						return
					}
				}
				v.FindForeign(SDPSLP, kind, now)
				v.Find("", now) // the match-all walk sweeps every shard
			}
		}()
	}

	// Writer: short-lived records plus a refreshed cohort that must
	// survive the whole test.
	for k := 0; k < kinds; k++ {
		for j := 0; j < perKind; j++ {
			v.Put(ServiceRecord{
				Origin:  SDPUPnP,
				Kind:    fmt.Sprintf("kind-%d", k),
				URL:     fmt.Sprintf("soap://10.0.0.%d:%d", k, 4000+j),
				Attrs:   map[string]string{},
				Expires: time.Now().Add(time.Duration(50+10*j) * time.Millisecond),
			})
		}
	}
	refreshed := ServiceRecord{
		Origin:  SDPSLP,
		Kind:    "kind-0",
		URL:     "service:survivor://10.0.0.99",
		Attrs:   map[string]string{},
		Expires: time.Now().Add(60 * time.Millisecond),
	}
	v.Put(refreshed)
	refreshDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(refreshDone)
		for i := 0; i < 20; i++ {
			refreshed.Expires = time.Now().Add(60 * time.Millisecond)
			v.Put(refreshed)
			time.Sleep(10 * time.Millisecond)
		}
		// The final renewal parks the survivor on a long lease so the
		// eviction wait below cannot age it out.
		refreshed.Expires = time.Now().Add(time.Hour)
		v.Put(refreshed)
	}()

	// Let everything expire while the readers keep running, then keep
	// writing to unrelated shards so the rotating maintenance sweep
	// visits the dead ones.
	<-refreshDone
	deadline := time.Now().Add(5 * time.Second)
	for {
		v.Put(ServiceRecord{
			Origin:  SDPJini,
			Kind:    "sweep-driver",
			URL:     "driver://10.0.0.1",
			Attrs:   map[string]string{},
			Expires: time.Now().Add(time.Hour),
		})
		// Len counts keys live-or-not: eviction means the keys map
		// itself shrank to the survivor records.
		if v.Len() <= 2 { // survivor + sweep-driver
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expired records never evicted: Len=%d", v.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// The refreshed record must have outlived every expiry wave it was
	// re-armed through.
	if _, ok := v.Get(SDPSLP, "service:survivor://10.0.0.99"); !ok {
		t.Error("refreshed record was evicted despite renewals")
	}
	if got := expireDeltas.Load(); got < int64(kinds*perKind) {
		t.Errorf("expiry emitted %d DeltaExpire, want ≥ %d", got, kinds*perKind)
	}
	cancel()
	drainWG.Wait()
}
