package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"indiss/internal/events"
	"indiss/internal/netapi"
	"indiss/internal/viewstore"
)

// Config defines one INDISS instance: "configuration of a INDISS instance
// is initially defined in terms of supported SDPs and the corresponding
// units that need be instantiated" (paper §3).
type Config struct {
	// Role is the deployment placement (client, service or gateway
	// side).
	Role Role
	// Table is the monitor's correspondence table; nil uses
	// DefaultTable.
	Table *CorrespondenceTable
	// Units lists the SDPs this instance may instantiate units for.
	// Empty means every SDP in the registry.
	Units []SDP
	// Dynamic delays unit instantiation until the monitor detects the
	// protocol — the run-time composition of paper Figure 5. When
	// false, all units start eagerly.
	Dynamic bool
	// ThresholdBps enables the §4.2 adaptation policy: on the service
	// side, when total observed traffic falls below the threshold,
	// units switch to active re-advertisement. Zero disables the
	// policy.
	ThresholdBps float64
	// PolicyInterval is how often the adaptation policy re-evaluates
	// (default 100ms).
	PolicyInterval time.Duration
	// Profile models INDISS's own translation cost.
	Profile TranslationProfile
	// NoCache disables view-cache answers (see UnitContext.NoCache).
	NoCache bool

	// DataDir, when non-empty, makes the service view persistent: the
	// system opens a log-structured store under the directory, replays
	// it into the view on start (warm boot), and mirrors every view
	// change back into it. Empty keeps the view memory-only.
	DataDir string
	// ViewMemBudget caps the view's in-memory footprint (bytes,
	// estimated): past it, cold remote records are spilled to the
	// DataDir store and served from disk on point lookups. Zero means
	// unbounded. Only meaningful with DataDir set.
	ViewMemBudget int64
	// MaintainInterval paces store compaction and budget enforcement
	// (default 1s). Only meaningful with DataDir set.
	MaintainInterval time.Duration

	// GatewayID names this instance in a gateway federation. Empty
	// defaults to the host name. Only meaningful with federation
	// enabled.
	GatewayID string
	// Peers lists the "ip:port" federation endpoints of peer gateways
	// this instance dials and keeps synced with.
	Peers []string
	// FederationPort is the TCP port the federation endpoint listens
	// on. Zero uses the federation package's default.
	FederationPort int
	// Federation builds the peering endpoint once the system is up. The
	// hook indirection (set by the public indiss package) keeps core
	// free of a dependency on internal/federation, which itself imports
	// core for the view and records. Nil disables federation.
	Federation FederationHook

	// QueryPort is the TCP port the HTTP/JSON query plane listens on.
	// Zero uses the query package's default; only meaningful with Query
	// set.
	QueryPort int
	// Query builds the HTTP/JSON read plane once the system is up —
	// the same hook indirection as Federation, keeping core free of a
	// dependency on internal/query. Nil disables the query plane.
	Query QueryHook

	// Predict builds the predictive discovery cache once the query
	// plane is up — the same hook indirection again, keeping core free
	// of a dependency on internal/predict. It runs last in the start
	// order (it observes the planes the other hooks built) and closes
	// first. Nil disables prediction.
	Predict PredictHook
}

// FederationHook constructs the view-sync peering endpoint for a running
// system. The returned closer is shut down first on System.Close, before
// the monitor and units, so no remote knowledge flows into a closing
// instance.
type FederationHook func(*System) (io.Closer, error)

// QueryHook constructs the HTTP/JSON query plane for a running system.
// Closed alongside the federation endpoint, before the monitor and
// units, so in-flight reads drain against a still-live view.
type QueryHook func(*System) (io.Closer, error)

// PredictHook constructs the predictive discovery cache for a running
// system. It is invoked after the federation and query hooks, so
// System.Federation() and System.QueryPlane() already answer; it is
// closed before both, so prediction never drives planes that are
// shutting down.
type PredictHook func(*System) (io.Closer, error)

// ErrSystemClosed reports use of a closed system.
var ErrSystemClosed = errors.New("core: system closed")

// detectionWorkers bounds concurrent native-message translations.
const detectionWorkers = 64

// System is a running INDISS instance: monitor + dynamically composed
// units around an event bus (paper Figure 5).
type System struct {
	stack    netapi.Stack
	registry *Registry
	cfg      Config

	bus     *events.Bus
	view    *ServiceView
	self    *SelfFilter
	monitor *Monitor

	store       *viewstore.Store
	storeCancel func()

	mu         sync.Mutex
	units      map[SDP]Unit
	allowed    map[SDP]struct{}
	closed     bool
	closeErr   error
	closeDone  chan struct{}
	reAdv      bool
	federation io.Closer
	query      io.Closer
	predictor  io.Closer

	sem  chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewSystem starts an INDISS instance on the given network stack using
// units from the registry. The stack may be a *simnet.Host (simulated
// fabric) or a realnet stack (live sockets) — the system never knows the
// difference.
func NewSystem(stack netapi.Stack, registry *Registry, cfg Config) (*System, error) {
	if cfg.PolicyInterval <= 0 {
		cfg.PolicyInterval = 100 * time.Millisecond
	}
	allowed := cfg.Units
	if len(allowed) == 0 {
		allowed = registry.SDPs()
	}
	s := &System{
		stack:    stack,
		registry: registry,
		cfg:      cfg,
		bus:      events.NewBus(),
		view:     NewServiceView(),
		self:     NewSelfFilter(),
		units:    make(map[SDP]Unit),
		allowed:  make(map[SDP]struct{}, len(allowed)),
		sem:      make(chan struct{}, detectionWorkers),
		stop:     make(chan struct{}),
	}
	for _, sdp := range allowed {
		s.allowed[sdp] = struct{}{}
	}

	if cfg.DataDir != "" {
		// Storage opens (and the warm boot replays) before the monitor
		// or any unit: the first native request already answers from
		// the recovered view.
		if err := s.openStorage(); err != nil {
			s.bus.Close()
			return nil, err
		}
	}

	monitor, err := NewMonitor(stack, MonitorConfig{
		Table:   cfg.Table,
		Handler: s.onDetection,
	})
	if err != nil {
		if s.store != nil {
			close(s.stop)
			s.storeCancel()
			s.wg.Wait()
			s.store.Close()
		}
		s.bus.Close()
		return nil, err
	}
	s.monitor = monitor

	if !cfg.Dynamic {
		for _, sdp := range allowed {
			if _, err := s.ensureUnit(sdp); err != nil {
				s.Close()
				return nil, err
			}
		}
	}
	if cfg.ThresholdBps > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.policyLoop()
		}()
	}
	if cfg.Federation != nil {
		fed, err := cfg.Federation(s)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: federation: %w", err)
		}
		s.mu.Lock()
		s.federation = fed
		s.mu.Unlock()
	}
	if cfg.Query != nil {
		qp, err := cfg.Query(s)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: query plane: %w", err)
		}
		s.mu.Lock()
		s.query = qp
		s.mu.Unlock()
	}
	if cfg.Predict != nil {
		pr, err := cfg.Predict(s)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: predict: %w", err)
		}
		s.mu.Lock()
		s.predictor = pr
		s.mu.Unlock()
	}
	return s, nil
}

// GatewayID returns this instance's federation identity: the configured
// GatewayID, defaulting to the host name.
func (s *System) GatewayID() string {
	if s.cfg.GatewayID != "" {
		return s.cfg.GatewayID
	}
	return s.stack.Name()
}

// Peers returns the configured federation peer endpoints.
func (s *System) Peers() []string { return s.cfg.Peers }

// Federation returns the running peering endpoint, or nil when
// federation is disabled. Callers needing more than io.Closer — the
// federation package's *Endpoint with its Stats() — type-assert the
// result; core itself stays free of that dependency.
func (s *System) Federation() io.Closer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.federation
}

// QueryPlane returns the running HTTP/JSON query server, or nil when
// the query plane is disabled. Callers needing more than io.Closer —
// the query package's *Server with its Addr() and Stats() —
// type-assert the result; core itself stays free of that dependency.
func (s *System) QueryPlane() io.Closer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.query
}

// Predictor returns the running predictive discovery cache, or nil
// when prediction is disabled. Callers needing more than io.Closer —
// the predict package's *Predictor with its Stats() — type-assert the
// result; core itself stays free of that dependency.
func (s *System) Predictor() io.Closer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.predictor
}

// Close stops the monitor, every unit and the bus. It is idempotent and
// safe to call concurrently: the first call runs the shutdown sequence
// exactly once and returns the first error any component reported;
// every later (or concurrent) call waits for that sequence to finish
// and returns the same error. Gateway binaries lean on this — a
// SIGTERM path and a deferred cleanup may both close the system, and
// only one shutdown may actually run.
func (s *System) Close() error {
	s.mu.Lock()
	if s.closed {
		done := s.closeDone
		s.mu.Unlock()
		<-done
		s.mu.Lock()
		err := s.closeErr
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.closeDone = make(chan struct{})
	defer close(s.closeDone)
	units := make([]Unit, 0, len(s.units))
	for _, u := range s.units {
		units = append(units, u)
	}
	s.units = make(map[SDP]Unit)
	fed := s.federation
	s.federation = nil
	qp := s.query
	s.query = nil
	pr := s.predictor
	s.predictor = nil
	s.mu.Unlock()

	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	close(s.stop)
	if pr != nil {
		// Prediction goes before the planes it drives: no prefetch or
		// refresh may land on a closing query engine or endpoint.
		keep(pr.Close())
	}
	if qp != nil {
		// The read plane goes before everything: queries should drain
		// against a view whose writers are still orderly.
		keep(qp.Close())
	}
	if fed != nil {
		// The peering plane goes first: no remote knowledge should flow
		// into (or out of) an instance whose units are stopping.
		keep(fed.Close())
	}
	s.monitor.Close()
	for _, u := range units {
		u.Stop()
	}
	if s.storeCancel != nil {
		// Units have stopped mutating: release the pump so it drains
		// whatever the feed still holds and exits.
		s.storeCancel()
	}
	s.wg.Wait()
	if s.store != nil {
		// Last out: everything that could write the log has stopped.
		keep(s.store.Close())
	}
	s.bus.Close()

	s.mu.Lock()
	s.closeErr = firstErr
	s.mu.Unlock()
	return firstErr
}

// Stack returns the network stack the instance runs on — the
// transport-neutral successor of the former Host accessor, which leaked
// the simulated-network type through the public API.
func (s *System) Stack() netapi.Stack { return s.stack }

// Monitor returns the system's monitor component.
func (s *System) Monitor() *Monitor { return s.monitor }

// View returns the shared service view.
func (s *System) View() *ServiceView { return s.view }

// Bus returns the event bus (exposed for tracing: the paper's control
// events let upper layers observe "a dynamic representation of the
// run-time interoperability architecture").
func (s *System) Bus() *events.Bus { return s.bus }

// Role returns the deployment role.
func (s *System) Role() Role { return s.cfg.Role }

// Units returns the currently instantiated units' SDPs, sorted — the
// run-time composition of Figure 5.
func (s *System) Units() []SDP {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SDP, 0, len(s.units))
	for sdp := range s.units {
		out = append(out, sdp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Unit returns the instantiated unit for the SDP, if any.
func (s *System) Unit(sdp SDP) (Unit, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.units[sdp]
	return u, ok
}

// EnsureUnit instantiates the unit for the SDP if allowed and not yet
// running — the dynamic composition entry point.
func (s *System) EnsureUnit(sdp SDP) (Unit, error) {
	return s.ensureUnit(sdp)
}

func (s *System) ensureUnit(sdp SDP) (Unit, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSystemClosed
	}
	if u, ok := s.units[sdp]; ok {
		s.mu.Unlock()
		return u, nil
	}
	if _, ok := s.allowed[sdp]; !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: SDP %s not in this instance's configuration", sdp)
	}
	reAdv := s.reAdv
	s.mu.Unlock()

	u, err := s.registry.New(sdp)
	if err != nil {
		return nil, err
	}
	ctx := &UnitContext{
		Stack:         s.stack,
		Bus:           s.bus,
		Role:          s.cfg.Role,
		View:          s.view,
		Self:          s.self,
		NoCache:       s.cfg.NoCache,
		Profile:       s.cfg.Profile,
		BeforePublish: s.beforePublish,
	}
	if err := u.Start(ctx); err != nil {
		return nil, fmt.Errorf("core: start %s unit: %w", sdp, err)
	}
	u.SetReadvertise(reAdv)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		u.Stop()
		return nil, ErrSystemClosed
	}
	if existing, raced := s.units[sdp]; raced {
		s.mu.Unlock()
		u.Stop()
		return existing, nil
	}
	s.units[sdp] = u
	s.mu.Unlock()
	return u, nil
}

// onDetection routes one raw message from the monitor to the appropriate
// unit, instantiating it first when running dynamically (Figure 2 steps
// ①–②).
func (s *System) onDetection(det Detection) {
	if s.self.Has(det.Src) {
		return // our own emission echoed back by multicast loopback
	}
	u, err := s.ensureUnit(det.SDP)
	if err != nil {
		return // protocol seen but not configured: ignore, per §3
	}
	select {
	case s.sem <- struct{}{}:
	case <-s.stop:
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() { <-s.sem }()
		u.HandleNative(det)
	}()
}

// beforePublish makes request translation reliable under dynamic
// composition: a request stream needs its translation targets subscribed
// before it flows, so every configured unit is instantiated first. Other
// stream kinds (advertisements) do not force instantiation — the paper's
// dynamism is preserved for passive traffic.
func (s *System) beforePublish(stream events.Stream) {
	if !s.cfg.Dynamic || !stream.Has(events.ServiceRequest) {
		return
	}
	s.mu.Lock()
	missing := make([]SDP, 0, len(s.allowed))
	for sdp := range s.allowed {
		if _, ok := s.units[sdp]; !ok {
			missing = append(missing, sdp)
		}
	}
	s.mu.Unlock()
	for _, sdp := range missing {
		_, _ = s.ensureUnit(sdp)
	}
}

// policyLoop implements the §4.2 adaptation: "define a network traffic
// threshold below which INDISS, hosted on the service host, must become
// active so as to intercept messages generated from the local services in
// order to translate them to any known SDPs."
func (s *System) policyLoop() {
	ticker := time.NewTicker(s.cfg.PolicyInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if s.cfg.Role != RoleServiceSide {
				continue
			}
			active := s.monitor.TotalRate() < s.cfg.ThresholdBps
			s.setReadvertise(active)
		}
	}
}

func (s *System) setReadvertise(enabled bool) {
	s.mu.Lock()
	if s.reAdv == enabled {
		s.mu.Unlock()
		return
	}
	s.reAdv = enabled
	units := make([]Unit, 0, len(s.units))
	for _, u := range s.units {
		units = append(units, u)
	}
	s.mu.Unlock()
	for _, u := range units {
		u.SetReadvertise(enabled)
	}
}

// Readvertising reports whether active re-advertisement is currently
// enabled.
func (s *System) Readvertising() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reAdv
}
