package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"indiss/internal/events"
	"indiss/internal/fsm"
	"indiss/internal/simnet"
	"indiss/internal/slp"
	"indiss/internal/ssdp"
)

func TestCorrespondenceTableDefaults(t *testing.T) {
	table := DefaultTable()
	tests := []struct {
		port int
		sdp  SDP
	}{
		{427, SDPSLP},
		{1846, SDPSLP},
		{1848, SDPSLP},
		{1900, SDPUPnP},
		{4160, SDPJini},
		{5353, SDPDNSSD},
	}
	for _, tt := range tests {
		entry, ok := table.Lookup(tt.port)
		if !ok || entry.SDP != tt.sdp {
			t.Errorf("Lookup(%d) = %v %v, want %v", tt.port, entry.SDP, ok, tt.sdp)
		}
	}
	if _, ok := table.Lookup(9999); ok {
		t.Error("unregistered port resolved")
	}
	if ports := table.Ports(); len(ports) != 6 || ports[0] != 427 {
		t.Errorf("Ports = %v", ports)
	}
}

func TestTableRestrict(t *testing.T) {
	table := DefaultTable()
	small, err := table.Restrict([]int{1900, 427})
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if ports := small.Ports(); len(ports) != 2 {
		t.Errorf("Ports = %v", ports)
	}
	if _, err := table.Restrict([]int{5}); err == nil {
		t.Error("unknown port accepted")
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(time.Second)
	now := time.Now()
	m.Observe(now, 500)
	m.Observe(now.Add(100*time.Millisecond), 500)
	if rate := m.Rate(now.Add(200 * time.Millisecond)); rate != 1000 {
		t.Errorf("rate = %v, want 1000 B/s", rate)
	}
	// After the window slides past the samples, rate decays to zero.
	if rate := m.Rate(now.Add(2 * time.Second)); rate != 0 {
		t.Errorf("decayed rate = %v, want 0", rate)
	}
	if m.Total() != 1000 {
		t.Errorf("total = %d", m.Total())
	}
}

func TestMonitorDetectsByPortOnly(t *testing.T) {
	// Paper §2.1: detection "is not based on the data content but on the
	// data existence at the specified UDP/TCP ports inside the
	// corresponding groups". Garbage payloads must be detected too.
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	var mu sync.Mutex
	var got []Detection
	mon, err := NewMonitor(b, MonitorConfig{Handler: func(d Detection) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	defer mon.Close()

	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	// SLP group: arbitrary bytes, not a valid SLP message.
	if err := send.WriteTo([]byte{0xde, 0xad}, simnet.Addr{IP: "239.255.255.253", Port: 427}); err != nil {
		t.Fatal(err)
	}
	// UPnP group.
	if err := send.WriteTo([]byte("M-SEARCH * HTTP/1.1\r\n\r\n"), simnet.Addr{IP: "239.255.255.250", Port: 1900}); err != nil {
		t.Fatal(err)
	}
	// Jini request group.
	if err := send.WriteTo([]byte{1, 1}, simnet.Addr{IP: "224.0.1.85", Port: 4160}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		count := len(got)
		mu.Unlock()
		if count >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("detections = %d, want 3", count)
		}
		time.Sleep(time.Millisecond)
	}

	if !mon.Seen(SDPSLP) || !mon.Seen(SDPUPnP) || !mon.Seen(SDPJini) {
		t.Errorf("Detected = %v", mon.Detected())
	}
	mu.Lock()
	defer mu.Unlock()
	for _, d := range got {
		entry, ok := DefaultTable().Lookup(d.Port)
		if !ok || entry.SDP != d.SDP {
			t.Errorf("detection %+v does not match table", d)
		}
	}
}

func TestMonitorCoexistsWithNativeStack(t *testing.T) {
	// The monitor must not steal traffic from a native SLP agent on the
	// same host (paper: interoperability "without altering the existing
	// applications and services").
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	clientHost := n.MustAddHost("client", "10.0.0.1")
	serviceHost := n.MustAddHost("service", "10.0.0.2")

	sa, err := slp.NewServiceAgent(serviceHost, slp.AgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	if err := sa.Register("service:clock", "service:clock://10.0.0.2:4005", time.Hour, nil); err != nil {
		t.Fatal(err)
	}

	detections := 0
	var mu sync.Mutex
	mon, err := NewMonitor(serviceHost, MonitorConfig{Handler: func(Detection) {
		mu.Lock()
		detections++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// The native exchange still works with the monitor attached.
	ua := slp.NewUserAgent(clientHost, slp.AgentConfig{})
	urls, err := ua.FindFirst("service:clock", "", time.Second)
	if err != nil {
		t.Fatalf("FindFirst with monitor attached: %v", err)
	}
	if len(urls) != 1 {
		t.Errorf("urls = %+v", urls)
	}
	// And the monitor saw the multicast request.
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		d := detections
		mu.Unlock()
		if d >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("monitor saw nothing")
		}
		time.Sleep(time.Millisecond)
	}
	if !mon.Seen(SDPSLP) {
		t.Error("SLP not detected")
	}
	if mon.Rate(SDPSLP) <= 0 {
		t.Error("rate meter not fed")
	}
}

func TestServiceView(t *testing.T) {
	v := NewServiceView()
	now := time.Now()
	v.Put(ServiceRecord{
		Origin: SDPUPnP, Kind: "clock",
		URL:     "http://10.0.0.2:4004/description.xml",
		Attrs:   map[string]string{"friendlyName": "Clock"},
		Expires: now.Add(time.Minute),
	})
	v.Put(ServiceRecord{
		Origin: SDPSLP, Kind: "printer",
		URL:     "service:printer:lpr://10.0.0.3",
		Expires: now.Add(time.Minute),
	})
	v.Put(ServiceRecord{
		Origin: SDPSLP, Kind: "clock",
		URL:     "service:clock://10.0.0.4",
		Expires: now.Add(-time.Minute), // already expired
	})

	if got := v.Find("clock", now); len(got) != 1 || got[0].Origin != SDPUPnP {
		t.Errorf("Find(clock) = %+v", got)
	}
	if got := v.Find("", now); len(got) != 2 {
		t.Errorf("Find(all) = %+v", got)
	}
	if got := v.FindForeign(SDPUPnP, "clock", now); len(got) != 0 {
		t.Errorf("FindForeign should exclude own origin: %+v", got)
	}
	if got := v.FindForeign(SDPSLP, "clock", now); len(got) != 1 {
		t.Errorf("FindForeign(SLP, clock) = %+v", got)
	}
	if !v.Remove(SDPSLP, "service:printer:lpr://10.0.0.3") {
		t.Error("Remove failed")
	}
	if v.Remove(SDPSLP, "nosuch") {
		t.Error("Remove of unknown succeeded")
	}
	// The view must not alias the producer's map: mutating the record a
	// caller Put must not leak into stored records, and an explicit
	// Clone of a returned record must be independent. (Returned records
	// share their Attrs map with the view read-only — the Figure 9b hot
	// path contract — so callers clone before mutating.)
	src := ServiceRecord{
		Origin: SDPUPnP, Kind: "camera",
		URL:     "http://10.0.0.5:4004/description.xml",
		Attrs:   map[string]string{"friendlyName": "Cam"},
		Expires: now.Add(time.Minute),
	}
	v.Put(src)
	src.Attrs["friendlyName"] = "mutated-by-producer"
	if v.Find("camera", now)[0].Attrs["friendlyName"] != "Cam" {
		t.Error("view aliases the producer's attr map")
	}
	clone := v.Find("camera", now)[0].Clone()
	clone.Attrs["friendlyName"] = "mutated-clone"
	if v.Find("camera", now)[0].Attrs["friendlyName"] != "Cam" {
		t.Error("Clone is not independent of the view")
	}
}

// stubUnit records calls for system tests.
type stubUnit struct {
	sdp SDP

	mu          sync.Mutex
	started     bool
	stopped     bool
	handled     []Detection
	streams     []events.Envelope
	readv       bool
	failOnStart bool
	ctx         *UnitContext
}

func (u *stubUnit) SDP() SDP { return u.sdp }

func (u *stubUnit) Start(ctx *UnitContext) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.failOnStart {
		return errors.New("stub start failure")
	}
	u.started = true
	u.ctx = ctx
	ctx.Bus.Subscribe(string(u.sdp), events.ListenerFunc(u.OnEvents))
	return nil
}

func (u *stubUnit) HandleNative(det Detection) {
	u.mu.Lock()
	u.handled = append(u.handled, det)
	ctx := u.ctx
	u.mu.Unlock()
	if ctx != nil {
		// Republish as a minimal advertisement stream so peers see
		// it. (A request stream would force peer instantiation —
		// covered separately by TestSystemRequestForcesPeers.)
		_ = ctx.Publish(string(u.sdp), events.NewStream(
			events.E(events.NetType, string(u.sdp)),
			events.E(events.ServiceAlive, ""),
		))
	}
}

func (u *stubUnit) OnEvents(env events.Envelope) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.streams = append(u.streams, env)
}

func (u *stubUnit) SetReadvertise(enabled bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.readv = enabled
}

func (u *stubUnit) Stop() {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.stopped = true
}

func (u *stubUnit) snapshot() (handled int, streams int, readv, started, stopped bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.handled), len(u.streams), u.readv, u.started, u.stopped
}

func stubRegistry(units map[SDP]*stubUnit) *Registry {
	r := NewRegistry()
	for sdp, u := range units {
		captured := u
		r.Register(sdp, func() Unit { return captured })
	}
	return r
}

func TestSystemDynamicInstantiation(t *testing.T) {
	// Paper §3: "at run-time, embedded units of different types are
	// instantiated and dynamically composed depending on the
	// environment."
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	units := map[SDP]*stubUnit{
		SDPSLP:  {sdp: SDPSLP},
		SDPUPnP: {sdp: SDPUPnP},
	}
	sys, err := NewSystem(b, stubRegistry(units), Config{Role: RoleGateway, Dynamic: true})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()

	if got := sys.Units(); len(got) != 0 {
		t.Fatalf("dynamic system started units eagerly: %v", got)
	}

	// SLP traffic appears: the SLP unit must materialize and receive it.
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := send.WriteTo([]byte("raw"), simnet.Addr{IP: "239.255.255.253", Port: 427}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if h, _, _, started, _ := units[SDPSLP].snapshot(); h >= 1 && started {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SLP unit never received the detection")
		}
		time.Sleep(time.Millisecond)
	}
	if got := sys.Units(); len(got) != 1 || got[0] != SDPSLP {
		t.Errorf("Units = %v, want [SLP]", got)
	}
	if _, _, _, started, _ := units[SDPUPnP].snapshot(); started {
		t.Error("UPnP unit instantiated without traffic")
	}
}

func TestSystemRequestForcesPeers(t *testing.T) {
	// A request stream published under dynamic composition must bring
	// up its translation targets before it flows: otherwise a foreign
	// request detected before the peer's protocol would be lost.
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	b := n.MustAddHost("b", "10.0.0.2")

	units := map[SDP]*stubUnit{
		SDPSLP:  {sdp: SDPSLP},
		SDPUPnP: {sdp: SDPUPnP},
	}
	sys, err := NewSystem(b, stubRegistry(units), Config{Role: RoleGateway, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	slpUnit, err := sys.EnsureUnit(SDPSLP)
	if err != nil {
		t.Fatal(err)
	}
	ctx := units[SDPSLP].ctx
	_ = slpUnit
	if err := ctx.Publish(string(SDPSLP), events.NewStream(
		events.E(events.NetType, string(SDPSLP)),
		events.E(events.ServiceRequest, ""),
		events.E(events.ServiceType, "clock"),
	)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, streams, _, started, _ := units[SDPUPnP].snapshot(); started && streams >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request stream did not instantiate and reach the peer unit")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSystemEagerInstantiation(t *testing.T) {
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	b := n.MustAddHost("b", "10.0.0.2")

	units := map[SDP]*stubUnit{
		SDPSLP:  {sdp: SDPSLP},
		SDPUPnP: {sdp: SDPUPnP},
	}
	sys, err := NewSystem(b, stubRegistry(units), Config{Role: RoleClientSide})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if got := sys.Units(); len(got) != 2 {
		t.Errorf("Units = %v", got)
	}
	if u, ok := sys.Unit(SDPSLP); !ok || u.SDP() != SDPSLP {
		t.Error("Unit lookup failed")
	}
}

func TestSystemRestrictedToConfiguredUnits(t *testing.T) {
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	units := map[SDP]*stubUnit{
		SDPSLP:  {sdp: SDPSLP},
		SDPUPnP: {sdp: SDPUPnP},
	}
	sys, err := NewSystem(b, stubRegistry(units), Config{
		Role:    RoleGateway,
		Dynamic: true,
		Units:   []SDP{SDPUPnP}, // SLP traffic must be ignored
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := send.WriteTo([]byte("raw"), simnet.Addr{IP: "239.255.255.253", Port: 427}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if h, _, _, _, _ := units[SDPSLP].snapshot(); h != 0 {
		t.Error("unconfigured SLP unit received traffic")
	}
	if _, err := sys.EnsureUnit(SDPSLP); err == nil {
		t.Error("EnsureUnit for unconfigured SDP succeeded")
	}
}

func TestSystemBusConnectsUnits(t *testing.T) {
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	units := map[SDP]*stubUnit{
		SDPSLP:  {sdp: SDPSLP},
		SDPUPnP: {sdp: SDPUPnP},
	}
	sys, err := NewSystem(b, stubRegistry(units), Config{Role: RoleGateway})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := send.WriteTo([]byte("raw"), simnet.Addr{IP: "239.255.255.253", Port: 427}); err != nil {
		t.Fatal(err)
	}

	// The SLP stub republished the detection as a stream; the UPnP stub
	// must receive it (and the SLP stub must not echo itself).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, streams, _, _, _ := units[SDPUPnP].snapshot(); streams >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never crossed the bus")
		}
		time.Sleep(time.Millisecond)
	}
	if _, streams, _, _, _ := units[SDPSLP].snapshot(); streams != 0 {
		t.Error("unit received its own stream")
	}
}

func TestSystemThresholdAdaptation(t *testing.T) {
	// Paper §4.2 / Figure 6: on the service side, quiet networks flip
	// INDISS to active re-advertisement; traffic flips it back.
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	a := n.MustAddHost("a", "10.0.0.1")
	b := n.MustAddHost("b", "10.0.0.2")

	units := map[SDP]*stubUnit{SDPSLP: {sdp: SDPSLP}}
	sys, err := NewSystem(b, stubRegistry(units), Config{
		Role:           RoleServiceSide,
		ThresholdBps:   1000,
		PolicyInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Quiet network → active.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, readv, _, _ := units[SDPSLP].snapshot(); readv {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("re-advertisement never enabled on quiet network")
		}
		time.Sleep(time.Millisecond)
	}
	if !sys.Readvertising() {
		t.Error("system does not report re-advertising")
	}

	// Blast traffic → passive again.
	send, err := a.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	stopTraffic := make(chan struct{})
	var trafficWG sync.WaitGroup
	trafficWG.Add(1)
	go func() {
		defer trafficWG.Done()
		payload := make([]byte, 400)
		for {
			select {
			case <-stopTraffic:
				return
			default:
				_ = send.WriteTo(payload, simnet.Addr{IP: "239.255.255.253", Port: 427})
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	defer func() {
		close(stopTraffic)
		trafficWG.Wait()
	}()

	deadline = time.Now().Add(2 * time.Second)
	for {
		if _, _, readv, _, _ := units[SDPSLP].snapshot(); !readv {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("re-advertisement never disabled under load")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSystemCloseStopsUnits(t *testing.T) {
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	b := n.MustAddHost("b", "10.0.0.2")
	u := &stubUnit{sdp: SDPSLP}
	sys, err := NewSystem(b, stubRegistry(map[SDP]*stubUnit{SDPSLP: u}), Config{Role: RoleGateway})
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys.Close() // idempotent
	if _, _, _, _, stopped := u.snapshot(); !stopped {
		t.Error("unit not stopped")
	}
	if _, err := sys.EnsureUnit(SDPSLP); !errors.Is(err, ErrSystemClosed) {
		t.Errorf("EnsureUnit after close: %v", err)
	}
}

func TestSystemUnitStartFailure(t *testing.T) {
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	b := n.MustAddHost("b", "10.0.0.2")
	u := &stubUnit{sdp: SDPSLP, failOnStart: true}
	if _, err := NewSystem(b, stubRegistry(map[SDP]*stubUnit{SDPSLP: u}), Config{Role: RoleGateway}); err == nil {
		t.Error("eager system with failing unit should error")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(SDPSLP, func() Unit { return &stubUnit{sdp: SDPSLP} })
	r.Register(SDPJini, func() Unit { return &stubUnit{sdp: SDPJini} })
	if got := r.SDPs(); len(got) != 2 || got[0] != SDPJini {
		t.Errorf("SDPs = %v", got)
	}
	u, err := r.New(SDPSLP)
	if err != nil || u.SDP() != SDPSLP {
		t.Errorf("New = %v %v", u, err)
	}
	if _, err := r.New(SDPUPnP); err == nil {
		t.Error("unregistered SDP instantiated")
	}
}

func TestRoleString(t *testing.T) {
	roles := map[Role]string{
		RoleClientSide:  "client-side",
		RoleServiceSide: "service-side",
		RoleGateway:     "gateway",
		Role(99):        "unknown",
	}
	for r, want := range roles {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q", r, got)
		}
	}
}

func TestUnitContextPublishValidates(t *testing.T) {
	bus := events.NewBus()
	defer bus.Close()
	ctx := &UnitContext{Bus: bus}
	if err := ctx.Publish("x", events.Stream{events.E(events.ServiceAlive, "")}); err == nil {
		t.Error("unframed stream accepted")
	}
	if err := ctx.Publish("x", events.NewStream(events.E(events.ServiceAlive, ""))); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
}

func TestTranslationProfileDelays(t *testing.T) {
	p := TranslationProfile{PerMessage: 5 * time.Millisecond, XMLParse: 5 * time.Millisecond}
	start := time.Now()
	p.Delay()
	p.DelayXML()
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("delays took %v", elapsed)
	}
	// Zero profile is free.
	var zero TranslationProfile
	start = time.Now()
	zero.Delay()
	zero.DelayXML()
	if elapsed := time.Since(start); elapsed > time.Millisecond {
		t.Errorf("zero profile slept %v", elapsed)
	}
}

// Compile-time checks that the native stacks' ports agree with the
// correspondence table (catching drift between packages).
func TestTableMatchesNativeStacks(t *testing.T) {
	if entry, _ := DefaultTable().Lookup(slp.Port); entry.SDP != SDPSLP {
		t.Error("SLP port mismatch")
	}
	if entry, _ := DefaultTable().Lookup(ssdp.Port); entry.SDP != SDPUPnP {
		t.Error("SSDP port mismatch")
	}
}

func TestFSMBuildFromSpec(t *testing.T) {
	spec := FSMSpec{
		Name: "UPnP",
		Tuples: []TupleSpec{
			{From: "Idle", Trigger: "SDP_C_START", Guard: "", To: "Open"},
			{From: "Open", Trigger: "SDP_SERVICE_TYPE", Guard: "isClock", To: "Matched", Actions: []string{"record"}},
			{From: "Matched", Trigger: "SDP_C_STOP", Guard: "", To: "Done"},
		},
	}
	recorded := ""
	m, err := BuildFSM(spec, "Idle",
		map[string]fsm.Guard{
			"isClock": func(ev events.Event, _ fsm.Vars) bool { return ev.Data == "clock" },
		},
		map[string]fsm.Action{
			"record": func(ev events.Event, _ fsm.Vars) error {
				recorded = ev.Data
				return nil
			},
		},
		"Done")
	if err != nil {
		t.Fatalf("BuildFSM: %v", err)
	}
	inst := m.NewInstance()
	if _, err := inst.FeedStream(events.NewStream(events.E(events.ServiceType, "clock"))); err != nil {
		t.Fatal(err)
	}
	if !inst.Accepting() || recorded != "clock" {
		t.Errorf("state=%s recorded=%q", inst.Current(), recorded)
	}

	// Unknown trigger name fails.
	bad := FSMSpec{Name: "x", Tuples: []TupleSpec{{From: "a", Trigger: "SDP_NOSUCH", To: "b"}}}
	if _, err := BuildFSM(bad, "a", nil, nil); !errors.Is(err, ErrSpec) {
		t.Errorf("err = %v, want ErrSpec", err)
	}
}
