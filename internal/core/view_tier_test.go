package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// stubStorage is an in-memory ViewStorage for tier tests.
type stubStorage struct {
	mu   sync.Mutex
	recs map[string]ServiceRecord
}

func newStubStorage() *stubStorage {
	return &stubStorage{recs: make(map[string]ServiceRecord)}
}

func (s *stubStorage) Spill(recs []ServiceRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		s.recs[viewKey(r.Origin, r.URL)] = r
	}
	return nil
}

func (s *stubStorage) Lookup(origin SDP, url string, now time.Time) (ServiceRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[viewKey(origin, url)]
	if !ok || !rec.Expires.After(now) {
		return ServiceRecord{}, false
	}
	return rec, true
}

func (s *stubStorage) SpilledCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

func tierRec(i int, remote bool) ServiceRecord {
	rec := ServiceRecord{
		Origin: SDPUPnP, Kind: "clock",
		URL:     fmt.Sprintf("soap://10.0.1.%d:4004", i),
		Attrs:   map[string]string{"friendlyName": "clock"},
		Expires: time.Now().Add(time.Hour),
	}
	if remote {
		rec.OriginGW, rec.Hops, rec.Remote = "gw-b", 1, true
	}
	return rec
}

// TestBudgetEvictsColdRemoteOnly: over budget, remote records spill to
// storage and stay reachable by Get; local records never leave memory.
func TestBudgetEvictsColdRemoteOnly(t *testing.T) {
	v := NewServiceView()
	stub := newStubStorage()
	v.AttachStorage(stub, 1) // a budget nothing fits under

	local := tierRec(1, false)
	v.Put(local)
	var remotes []ServiceRecord
	for i := 10; i < 40; i++ {
		r := tierRec(i, true)
		v.Put(r)
		remotes = append(remotes, r)
	}
	before := v.Len()

	spilled := v.EnforceBudget(time.Now())
	if spilled != len(remotes) {
		t.Fatalf("spilled %d records, want %d", spilled, len(remotes))
	}
	if v.Len() != before {
		t.Fatalf("Len changed across eviction: %d -> %d", before, v.Len())
	}
	// The local record is untouched and in memory.
	if _, ok := stub.recs[viewKey(local.Origin, local.URL)]; ok {
		t.Fatal("local record was evicted")
	}
	if rec, ok := v.Get(local.Origin, local.URL); !ok || rec.Remote {
		t.Fatalf("local record lost: %+v ok=%v", rec, ok)
	}
	// Every remote record still answers a point lookup, via the cold tier.
	for _, r := range remotes {
		got, ok := v.Get(r.Origin, r.URL)
		if !ok || got.URL != r.URL || !got.Remote {
			t.Fatalf("spilled record unreachable: %s ok=%v", r.URL, ok)
		}
	}
	if v.ColdHits() == 0 {
		t.Fatal("cold lookups not counted")
	}
	// Memory accounting reflects the spill.
	if v.MemUsage() > recSize(&local)*4 {
		t.Fatalf("memory estimate %d still holds the remote records", v.MemUsage())
	}
}

// TestRemoveSpilledRecordEmitsWithdrawal: withdrawing a record that
// lives only in the cold tier still reports true and emits the
// DeltaRemove the federation and the storage pump depend on.
func TestRemoveSpilledRecordEmitsWithdrawal(t *testing.T) {
	v := NewServiceView()
	stub := newStubStorage()
	v.AttachStorage(stub, 1)
	deltas, cancel := v.SubscribeDeltaBatches(16)
	defer cancel()

	r := tierRec(7, true)
	v.Put(r)
	if v.EnforceBudget(time.Now()) != 1 {
		t.Fatal("record not spilled")
	}
	if !v.Remove(r.Origin, r.URL) {
		t.Fatal("Remove of a spilled record reported false")
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case batch := <-deltas:
			for _, d := range batch {
				if d.Op == DeltaRemove && d.Record.URL == r.URL {
					return
				}
			}
		case <-deadline:
			t.Fatal("no DeltaRemove emitted for the spilled record")
		}
	}
}

// TestEvictionSkipsRefreshedRecords: a record refreshed between the
// spill copy and the deletion pass keeps its (newer) memory copy — the
// concurrent Put wins, and the other batch member satisfies the budget.
func TestEvictionSkipsRefreshedRecords(t *testing.T) {
	v := NewServiceView()
	stub := newStubStorage()
	refreshed := tierRec(3, true)
	refreshed.Expires = time.Now().Add(2 * time.Hour)
	fired := false
	wrapper := &hookedStorage{stubStorage: stub, onSpill: func() {
		if !fired {
			fired = true
			v.Put(refreshed) // lands between Spill and the deletion pass
		}
	}}

	stale := refreshed
	stale.Expires = time.Now().Add(time.Hour)
	other := tierRec(4, true)
	v.Put(stale)
	v.Put(other)
	// A budget one record fits under: evicting `other` is enough.
	v.AttachStorage(wrapper, recSize(&refreshed)+32)

	if n := v.EnforceBudget(time.Now()); n != 1 {
		t.Fatalf("evicted %d records, want 1 (just the unrefreshed one)", n)
	}
	got, ok := v.Get(refreshed.Origin, refreshed.URL)
	if !ok || !got.Expires.Equal(refreshed.Expires) {
		t.Fatalf("refreshed record lost or stale: %+v ok=%v", got, ok)
	}
	if v.ColdHits() != 0 {
		t.Fatal("refreshed record was served from the cold tier")
	}
}

type hookedStorage struct {
	*stubStorage
	onSpill func()
}

func (h *hookedStorage) Spill(recs []ServiceRecord) error {
	err := h.stubStorage.Spill(recs)
	if h.onSpill != nil {
		h.onSpill()
	}
	return err
}
