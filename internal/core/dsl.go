package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"indiss/internal/events"
	"indiss/internal/fsm"
)

// This file implements the specification language of paper §3. Figure 5a
// defines an instance as:
//
//	System SDP = {
//	    Component Monitor = {
//	        ScanPort = { 1900; 1846; 4160; 427 }
//	    }
//	    Component Unit SLP(port=1846,427);
//	    Component Unit UPnP(port=1900);
//	    Component Unit JINI(port=4160);
//	}
//
// and §3 adds two operators: unit definitions
//
//	Component Unit UPnP = {
//	    setFSM(fsm, UPNP);
//	    AddParser(component, SSDP);
//	    AddComposer(component, SSDP);
//	}
//
// and state machine definitions
//
//	Component UPnP-FSM = {
//	    AddTuple(CurrentState, trigger, condition-guard, NewState, actions...);
//	}

// Spec is a parsed "System" block.
type Spec struct {
	// Name is the system's name ("SDP" in Figure 5a).
	Name string
	// ScanPorts is the monitor's port list.
	ScanPorts []int
	// Units are the units the instance may instantiate.
	Units []UnitSpec
	// UnitDefs are unit-definition blocks (setFSM/AddParser/AddComposer).
	UnitDefs []UnitDef
	// FSMs are state-machine definition blocks.
	FSMs []FSMSpec
}

// UnitSpec is one "Component Unit NAME(port=...)" declaration.
type UnitSpec struct {
	SDP   SDP
	Ports []int
}

// UnitDef is one "Component Unit NAME = { ... }" definition block.
type UnitDef struct {
	Name      string
	FSM       string
	Parsers   []string
	Composers []string
}

// FSMSpec is one "Component NAME-FSM = { AddTuple(...); }" block.
type FSMSpec struct {
	Name   string
	Tuples []TupleSpec
}

// TupleSpec mirrors the paper's AddTuple(CurrentState, triggers,
// condition-guards, NewState, actions) operator.
type TupleSpec struct {
	From    string
	Trigger string // paper event name, e.g. "SDP_C_START"
	Guard   string // empty for unconditional
	To      string
	Actions []string
}

// ErrSpec reports a specification syntax or semantic error.
var ErrSpec = errors.New("core: spec error")

// ParseSpec parses a system specification.
func ParseSpec(src string) (*Spec, error) {
	p := &specParser{toks: tokenize(src)}
	spec, err := p.parseSystem()
	if err != nil {
		return nil, err
	}
	return spec, nil
}

// BuildFSM turns an FSMSpec into a validated machine, resolving trigger
// names through the event vocabulary and guard/action names through the
// supplied maps.
func BuildFSM(spec FSMSpec, start fsm.State, guards map[string]fsm.Guard, actions map[string]fsm.Action, accept ...fsm.State) (*fsm.Machine, error) {
	b := fsm.New(spec.Name, start)
	for name, g := range guards {
		b.Guard(name, g)
	}
	for name, a := range actions {
		b.Action(name, a)
	}
	for _, t := range spec.Tuples {
		trigger, ok := events.ByName(t.Trigger)
		if !ok {
			return nil, fmt.Errorf("%w: fsm %s: unknown event %q", ErrSpec, spec.Name, t.Trigger)
		}
		b.AddTuple(fsm.State(t.From), trigger, t.Guard, fsm.State(t.To), t.Actions...)
	}
	b.Accept(accept...)
	return b.Build()
}

// --- tokenizer ---

type token struct {
	kind tokenKind
	text string
}

type tokenKind uint8

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokPunct // one of { } ( ) = ; ,
	tokEOF
)

func tokenize(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.IndexByte("{}()=;,", c) >= 0:
			toks = append(toks, token{kind: tokPunct, text: string(c)})
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j]})
			i = j
		default:
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			if j == i {
				// Unknown byte: emit as punct so the parser
				// reports it in context.
				toks = append(toks, token{kind: tokPunct, text: string(c)})
				i++
				continue
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j]})
			i = j
		}
	}
	return append(toks, token{kind: tokEOF})
}

func isIdentChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		return true
	case c >= '0' && c <= '9':
		return true
	case c == '_', c == '-', c == ':', c == '.':
		return true
	default:
		return false
	}
}

// --- parser ---

type specParser struct {
	toks []token
	pos  int
}

func (p *specParser) peek() token { return p.toks[p.pos] }

func (p *specParser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *specParser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("%w: expected %q, got %q", ErrSpec, s, t.text)
	}
	return nil
}

func (p *specParser) expectIdent(want string) (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("%w: expected identifier, got %q", ErrSpec, t.text)
	}
	if want != "" && !strings.EqualFold(t.text, want) {
		return "", fmt.Errorf("%w: expected %q, got %q", ErrSpec, want, t.text)
	}
	return t.text, nil
}

func (p *specParser) parseSystem() (*Spec, error) {
	if _, err := p.expectIdent("System"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	spec := &Spec{Name: name}
	for {
		t := p.peek()
		if t.kind == tokPunct && t.text == "}" {
			p.next()
			break
		}
		if t.kind == tokEOF {
			return nil, fmt.Errorf("%w: unterminated System block", ErrSpec)
		}
		if err := p.parseComponent(spec); err != nil {
			return nil, err
		}
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("%w: trailing tokens after System block", ErrSpec)
	}
	return spec, nil
}

func (p *specParser) parseComponent(spec *Spec) error {
	if _, err := p.expectIdent("Component"); err != nil {
		return err
	}
	name, err := p.expectIdent("")
	if err != nil {
		return err
	}
	switch {
	case strings.EqualFold(name, "Monitor"):
		return p.parseMonitor(spec)
	case strings.EqualFold(name, "Unit"):
		return p.parseUnit(spec)
	case strings.HasSuffix(strings.ToUpper(name), "-FSM"):
		return p.parseFSM(spec, name)
	default:
		return fmt.Errorf("%w: unknown component %q", ErrSpec, name)
	}
}

// parseMonitor handles: Monitor = { ScanPort = { 1900; 427 } }
func (p *specParser) parseMonitor(spec *Spec) error {
	if err := p.expectPunct("="); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	if _, err := p.expectIdent("ScanPort"); err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		t := p.next()
		switch {
		case t.kind == tokNumber:
			port, err := strconv.Atoi(t.text)
			if err != nil || port <= 0 || port > 65535 {
				return fmt.Errorf("%w: bad port %q", ErrSpec, t.text)
			}
			spec.ScanPorts = append(spec.ScanPorts, port)
		case t.kind == tokPunct && (t.text == ";" || t.text == ","):
			// separator
		case t.kind == tokPunct && t.text == "}":
			// Close the ScanPort list, then the Monitor block.
			if err := p.expectPunct("}"); err != nil {
				return err
			}
			return nil
		default:
			return fmt.Errorf("%w: unexpected %q in ScanPort list", ErrSpec, t.text)
		}
	}
}

// parseUnit handles both declarations — Unit SLP(port=427); — and
// definitions — Unit UPnP = { setFSM(...); AddParser(...); }.
func (p *specParser) parseUnit(spec *Spec) error {
	name, err := p.expectIdent("")
	if err != nil {
		return err
	}
	t := p.peek()
	if t.kind == tokPunct && t.text == "(" {
		return p.parseUnitDecl(spec, name)
	}
	if t.kind == tokPunct && t.text == "=" {
		return p.parseUnitDef(spec, name)
	}
	return fmt.Errorf("%w: expected ( or = after Unit %s", ErrSpec, name)
}

func (p *specParser) parseUnitDecl(spec *Spec, name string) error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	if _, err := p.expectIdent("port"); err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	u := UnitSpec{SDP: SDP(name)}
	for {
		t := p.next()
		switch {
		case t.kind == tokNumber:
			port, err := strconv.Atoi(t.text)
			if err != nil || port <= 0 || port > 65535 {
				return fmt.Errorf("%w: bad port %q", ErrSpec, t.text)
			}
			u.Ports = append(u.Ports, port)
		case t.kind == tokPunct && t.text == ",":
			// separator
		case t.kind == tokPunct && t.text == ")":
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			if len(u.Ports) == 0 {
				return fmt.Errorf("%w: unit %s declares no ports", ErrSpec, name)
			}
			spec.Units = append(spec.Units, u)
			return nil
		default:
			return fmt.Errorf("%w: unexpected %q in unit ports", ErrSpec, t.text)
		}
	}
}

func (p *specParser) parseUnitDef(spec *Spec, name string) error {
	if err := p.expectPunct("="); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	def := UnitDef{Name: name}
	for {
		t := p.next()
		if t.kind == tokPunct && t.text == "}" {
			spec.UnitDefs = append(spec.UnitDefs, def)
			return nil
		}
		if t.kind != tokIdent {
			return fmt.Errorf("%w: expected operator in unit %s, got %q", ErrSpec, name, t.text)
		}
		args, err := p.parseArgs()
		if err != nil {
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		switch {
		case strings.EqualFold(t.text, "setFSM"):
			if len(args) != 2 {
				return fmt.Errorf("%w: setFSM wants 2 args, got %d", ErrSpec, len(args))
			}
			def.FSM = args[1]
		case strings.EqualFold(t.text, "AddParser"):
			if len(args) != 2 {
				return fmt.Errorf("%w: AddParser wants 2 args, got %d", ErrSpec, len(args))
			}
			def.Parsers = append(def.Parsers, args[1])
		case strings.EqualFold(t.text, "AddComposer"):
			if len(args) != 2 {
				return fmt.Errorf("%w: AddComposer wants 2 args, got %d", ErrSpec, len(args))
			}
			def.Composers = append(def.Composers, args[1])
		default:
			return fmt.Errorf("%w: unknown operator %q in unit %s", ErrSpec, t.text, name)
		}
	}
}

// parseFSM handles: Component NAME-FSM = { AddTuple(a,b,c,d,e...); ... }
func (p *specParser) parseFSM(spec *Spec, name string) error {
	if err := p.expectPunct("="); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	f := FSMSpec{Name: strings.TrimSuffix(strings.TrimSuffix(name, "-FSM"), "-fsm")}
	for {
		t := p.next()
		if t.kind == tokPunct && t.text == "}" {
			spec.FSMs = append(spec.FSMs, f)
			return nil
		}
		if t.kind != tokIdent || !strings.EqualFold(t.text, "AddTuple") {
			return fmt.Errorf("%w: expected AddTuple in %s, got %q", ErrSpec, name, t.text)
		}
		args, err := p.parseArgs()
		if err != nil {
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		if len(args) < 4 {
			return fmt.Errorf("%w: AddTuple wants >= 4 args, got %d", ErrSpec, len(args))
		}
		f.Tuples = append(f.Tuples, TupleSpec{
			From:    args[0],
			Trigger: args[1],
			Guard:   args[2],
			To:      args[3],
			Actions: args[4:],
		})
	}
}

// parseArgs reads "( a, b, , c )" allowing empty positions (the paper's
// AddTuple leaves the guard slot empty for unconditional transitions).
func (p *specParser) parseArgs() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []string
	pendingEmpty := true // a ',' or ')' with no preceding value is empty
	for {
		t := p.next()
		switch {
		case t.kind == tokIdent || t.kind == tokNumber:
			args = append(args, t.text)
			pendingEmpty = false
		case t.kind == tokPunct && t.text == ",":
			if pendingEmpty {
				args = append(args, "")
			}
			pendingEmpty = true
		case t.kind == tokPunct && t.text == ")":
			if pendingEmpty && len(args) > 0 {
				args = append(args, "")
			}
			return args, nil
		default:
			return nil, fmt.Errorf("%w: unexpected %q in argument list", ErrSpec, t.text)
		}
	}
}
