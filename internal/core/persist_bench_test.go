package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"indiss/internal/viewstore"
)

// BenchmarkLargeViewBudget holds a million-record view to a 64MB memory
// budget: remote records past the budget spill to the log store and are
// served from disk on point lookups. The reported metrics are the
// artifact PERF.md records — the view's own footprint estimate, the
// process heap after a GC, and the spilled count — and the timed loop
// is the worst case left after eviction: point Gets that fall through
// to the cold tier.
func BenchmarkLargeViewBudget(b *testing.B) {
	const (
		n      = 1 << 20
		budget = 64 << 20
	)
	st, err := viewstore.Open(b.TempDir(), viewstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	v := NewServiceView()
	v.AttachStorage(storeAdapter{st: st}, budget)

	url := func(i int) string { return fmt.Sprintf("soap://10.%d.%d.%d:4004/s%d", i>>16&255, i>>8&255, i&255, i) }
	exp := time.Now().Add(24 * time.Hour)
	for i := 0; i < n; i++ {
		v.Put(ServiceRecord{
			Origin:   SDPUPnP,
			Kind:     "kind-" + fmt.Sprint(i%4096),
			URL:      url(i),
			Expires:  exp,
			OriginGW: "gw-far",
			Hops:     1,
			Remote:   true,
		})
		// Enforce as a deployed system's maintenance tick would, so the
		// hot tier never balloons far past the budget mid-load.
		if i%65536 == 65535 {
			v.EnforceBudget(time.Now())
		}
	}
	for v.MemUsage() > budget {
		if v.EnforceBudget(time.Now()) == 0 {
			b.Fatalf("EnforceBudget stalled at MemUsage=%d", v.MemUsage())
		}
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := (i * 2654435761) % n
		if _, ok := v.Get(SDPUPnP, url(idx)); !ok {
			b.Fatalf("record %d unreachable", idx)
		}
	}
	b.StopTimer()

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heap-MB")
	b.ReportMetric(float64(v.MemUsage())/(1<<20), "view-mem-MB")
	b.ReportMetric(float64(st.SpilledCount()), "spilled")
}
