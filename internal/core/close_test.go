package core

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"indiss/internal/events"
	"indiss/internal/simnet"
)

// countingUnit counts Stop calls — the observable for the double-Close
// regression: however many times callers Close the system, the shutdown
// sequence must run exactly once.
type countingUnit struct {
	sdp   SDP
	stops atomic.Int32
}

func (u *countingUnit) SDP() SDP                     { return u.sdp }
func (u *countingUnit) Start(ctx *UnitContext) error { return nil }
func (u *countingUnit) HandleNative(det Detection)   {}
func (u *countingUnit) OnEvents(env events.Envelope) {}
func (u *countingUnit) SetReadvertise(enabled bool)  {}
func (u *countingUnit) Stop()                        { u.stops.Add(1) }

// errCloser is a plane closer that fails, and counts how often it is
// asked to.
type errCloser struct {
	err    error
	closes atomic.Int32
}

func (c *errCloser) Close() error {
	c.closes.Add(1)
	return c.err
}

// TestSystemCloseIdempotent is the regression test for the gateway
// binary's double-Close path (a deferred Close plus the explicit
// shutdown-sequence Close on SIGTERM): the second call must be a no-op
// that reports the first call's error, and no component may be stopped
// twice.
func TestSystemCloseIdempotent(t *testing.T) {
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	host := n.MustAddHost("gw", "10.0.0.9")

	unit := &countingUnit{sdp: SDPSLP}
	reg := NewRegistry()
	reg.Register(SDPSLP, func() Unit { return unit })

	wantErr := errors.New("query plane failed to drain")
	qp := &errCloser{err: wantErr}
	sys, err := NewSystem(host, reg, Config{
		Role:  RoleGateway,
		Units: []SDP{SDPSLP},
		Query: func(*System) (io.Closer, error) { return qp, nil },
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}

	if err := sys.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("first Close = %v, want the query plane's %v", err, wantErr)
	}
	if err := sys.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("second Close = %v, want the first call's error %v", err, wantErr)
	}
	if got := unit.stops.Load(); got != 1 {
		t.Errorf("unit stopped %d times across two Close calls, want exactly 1", got)
	}
	if got := qp.closes.Load(); got != 1 {
		t.Errorf("query plane closed %d times, want exactly 1", got)
	}
}

// TestSystemCloseConcurrent races many Close calls: all must return the
// same first error and the sequence must still run once. This is the
// shape a real SIGTERM produces — the signal handler and the deferred
// cleanup close from different goroutines.
func TestSystemCloseConcurrent(t *testing.T) {
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	host := n.MustAddHost("gw", "10.0.0.9")

	unit := &countingUnit{sdp: SDPUPnP}
	reg := NewRegistry()
	reg.Register(SDPUPnP, func() Unit { return unit })

	wantErr := errors.New("peering teardown error")
	fed := &errCloser{err: wantErr}
	sys, err := NewSystem(host, reg, Config{
		Role:       RoleGateway,
		Units:      []SDP{SDPUPnP},
		Federation: func(*System) (io.Closer, error) { return fed, nil },
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = sys.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, wantErr) {
			t.Errorf("caller %d: Close = %v, want %v", i, err, wantErr)
		}
	}
	if got := unit.stops.Load(); got != 1 {
		t.Errorf("unit stopped %d times across %d concurrent Close calls, want exactly 1", got, callers)
	}
	if got := fed.closes.Load(); got != 1 {
		t.Errorf("federation closed %d times, want exactly 1", got)
	}
}
