package core

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// ServiceRecord is one service INDISS knows about, in SDP-neutral form.
// Records are produced by units parsing native advertisements and
// responses, and consumed by units composing answers for other SDPs.
type ServiceRecord struct {
	// Origin is the SDP the service natively speaks.
	Origin SDP
	// Kind is the canonical short service type ("clock", "printer").
	Kind string
	// URL is the service's native endpoint or service URL.
	URL string
	// Location is the description document URL for SDPs that have one
	// (UPnP), empty otherwise.
	Location string
	// Attrs are the service's attributes in neutral name=value form.
	Attrs map[string]string
	// Expires is when the knowledge lapses (from lifetimes/max-age).
	Expires time.Time
}

// Clone deep-copies the record.
func (r ServiceRecord) Clone() ServiceRecord {
	attrs := make(map[string]string, len(r.Attrs))
	for k, v := range r.Attrs {
		attrs[k] = v
	}
	out := r
	out.Attrs = attrs
	return out
}

// ServiceView is the shared, expiring cache of discovered services. It is
// what makes the paper's Figure 9b the "best case": when a request
// arrives for a service the view already knows, the unit composes the
// native answer directly — "the necessary information to generate a
// search response … is tiny".
type ServiceView struct {
	mu      sync.Mutex
	records map[string]ServiceRecord // keyed by origin|url
}

// NewServiceView returns an empty view.
func NewServiceView() *ServiceView {
	return &ServiceView{records: make(map[string]ServiceRecord)}
}

func viewKey(origin SDP, url string) string {
	return string(origin) + "|" + url
}

// Put inserts or refreshes a record.
func (v *ServiceView) Put(rec ServiceRecord) {
	if rec.URL == "" {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.records[viewKey(rec.Origin, rec.URL)] = rec.Clone()
}

// Remove withdraws a record (service byebye / deregistration).
func (v *ServiceView) Remove(origin SDP, url string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := viewKey(origin, url)
	if _, ok := v.records[key]; !ok {
		return false
	}
	delete(v.records, key)
	return true
}

// Find returns live records of the given kind (case-insensitive); an
// empty kind matches everything. Results are URL-ordered.
func (v *ServiceView) Find(kind string, now time.Time) []ServiceRecord {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []ServiceRecord
	for key, rec := range v.records {
		if !rec.Expires.After(now) {
			delete(v.records, key)
			continue
		}
		if kind != "" && !strings.EqualFold(kind, rec.Kind) {
			continue
		}
		out = append(out, rec.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// FindForeign returns live records of the given kind that did NOT
// originate from the asking SDP — the set a bridge should re-advertise or
// answer with (a unit never answers its own protocol's services; the
// native stack already does that).
func (v *ServiceView) FindForeign(asking SDP, kind string, now time.Time) []ServiceRecord {
	all := v.Find(kind, now)
	out := all[:0]
	for _, rec := range all {
		if rec.Origin != asking {
			out = append(out, rec)
		}
	}
	return out
}

// Len returns the number of records, live or not.
func (v *ServiceView) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.records)
}
