package core

import (
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ServiceRecord is one service INDISS knows about, in SDP-neutral form.
// Records are produced by units parsing native advertisements and
// responses, and consumed by units composing answers for other SDPs.
type ServiceRecord struct {
	// Origin is the SDP the service natively speaks.
	Origin SDP
	// Kind is the canonical short service type ("clock", "printer").
	Kind string
	// URL is the service's native endpoint or service URL.
	URL string
	// Location is the description document URL for SDPs that have one
	// (UPnP), empty otherwise.
	Location string
	// Attrs are the service's attributes in neutral name=value form.
	Attrs map[string]string
	// Expires is when the knowledge lapses (from lifetimes/max-age).
	Expires time.Time

	// Federation provenance. Records learned from local native traffic
	// leave all three fields zero; records synced from a peer gateway
	// carry where the knowledge entered the federation and how far it
	// traveled.

	// OriginGW is the ID of the gateway that first bridged the record
	// into the federation. Empty for locally learned records.
	OriginGW string
	// Hops is the number of federation links the record crossed to get
	// here (0 for local records).
	Hops int
	// Remote marks records learned from peer gateways rather than from
	// this segment's native traffic.
	Remote bool
}

// Clone deep-copies the record.
func (r ServiceRecord) Clone() ServiceRecord {
	attrs := make(map[string]string, len(r.Attrs))
	for k, v := range r.Attrs {
		attrs[k] = v
	}
	out := r
	out.Attrs = attrs
	return out
}

// viewShardCount is the number of kind-hashed shards. Discovery traffic
// concentrates on few kinds at a time, so a small power of two keeps the
// footprint negligible while letting unrelated kinds proceed in parallel.
const viewShardCount = 16

// expiryEntry is one pending expiration in a shard's min-heap. Entries
// are never updated in place: each record has one *live* entry (matching
// seq in the shard's armed index); anything else popped is a discarded
// orphan from an earlier arm.
type expiryEntry struct {
	at   time.Time
	kind string // lowercased kind, the record's bucket
	key  string
	seq  uint64
}

// armedState tracks a record's live heap entry: its identity (seq) and
// deadline (at). Pops compare seq so orphaned entries can never re-arm,
// and Put compares at so a shortened deadline re-arms early.
type armedState struct {
	seq uint64
	at  time.Time
}

// kindBucket holds one lowercased kind's records plus a coarse recency
// stamp the eviction pass ranks buckets by. The stamp is written at
// most once per second per bucket (see touchBucket), so concurrent
// readers under the shard RLock do not fight over the cache line.
type kindBucket struct {
	recs  map[string]ServiceRecord // key → record
	touch atomic.Int64             // unix seconds of the last read hit
}

// viewShard holds the records of the kinds hashing to it, bucketed by
// lowercased kind so a Find touches exactly the records it returns.
type viewShard struct {
	mu     sync.RWMutex
	kinds  map[string]*kindBucket // lowered kind → bucket
	expiry []expiryEntry          // min-heap by at
	// armed maps each (kind,key) to its single live heap entry. Put
	// pushes only when unarmed or when the new deadline is earlier than
	// the armed one (the superseded entry becomes an orphan its seq
	// mismatch discards at pop), and the sweep either re-arms (record
	// refreshed) or disarms (record gone/expired) the live entry it
	// pops. Neither refresh storms nor Remove→re-Put churn can grow the
	// heap beyond transient orphans.
	armed map[string]armedState
	seq   uint64
}

// armedKey identifies a heap entry's record within its shard.
func armedKey(kind, key string) string {
	return kind + "\x00" + key
}

// DeltaOp names what happened to a record in the view.
type DeltaOp uint8

// Delta operations.
const (
	// DeltaPut reports an inserted or refreshed record.
	DeltaPut DeltaOp = iota + 1
	// DeltaRemove reports an explicit withdrawal (byebye/deregistration).
	DeltaRemove
	// DeltaExpire reports a record that aged out. Expiry is local to
	// every cache (the TTL travels with the record), so consumers that
	// replicate the view — the federation plane — propagate Remove but
	// not Expire.
	DeltaExpire
)

// Delta is one change to the view, as delivered to delta subscribers.
// Record is a value copy whose Attrs map is shared with the view and
// must be treated as read-only (the Find contract).
type Delta struct {
	Op     DeltaOp
	Record ServiceRecord
}

// ServiceView is the shared, expiring cache of discovered services. It is
// what makes the paper's Figure 9b the "best case": when a request
// arrives for a service the view already knows, the unit composes the
// native answer directly — "the necessary information to generate a
// search response … is tiny".
//
// The view is sharded by (lowercased) service kind with a read/write lock
// per shard: the hot lookup — Find of one kind — takes one shard's read
// lock and touches only that kind's bucket, so concurrent lookups for
// unrelated kinds never contend and no lookup pays for the size of the
// whole cache. Expiry is a lazy min-heap sweep per shard instead of a
// full-map scan per lookup.
type ServiceView struct {
	// keysMu guards keys, the global origin|url → lowered-kind index
	// that routes Remove (which does not know the kind) and keeps a key
	// unique when a re-Put changes its kind. Mutating operations take
	// keysMu before a shard lock; read paths never touch it.
	//
	// Holding keysMu across a whole Put serializes writers globally —
	// a deliberate trade-off: writes arrive at advertisement rate
	// (~per-second per service) while lookups arrive at request rate,
	// and spanning the key check-and-update is what makes the
	// cross-shard uniqueness invariant trivially correct. The sharding
	// exists to parallelize the hot read path, which stays lock-free of
	// any global state.
	keysMu sync.Mutex
	keys   map[string]string

	// sweepCursor rotates a maintenance sweep across shards on Put (see
	// there), so expired records in shards that are never re-written or
	// queried still get collected. Guarded by keysMu.
	sweepCursor uint32

	shards [viewShardCount]viewShard

	// gen counts view mutations: every Put, Remove and expiry bumps it.
	// Consumers that memoize derived answers (the query plane's answer
	// cache, after the federation digest cache's bumpSummaries pattern)
	// tag their cache with the generation read before the scan and
	// revalidate with one atomic load. Eviction to the cold tier does
	// NOT bump it: spilling moves a record's residence, not the answer
	// set (ScanCold serves it from disk).
	gen atomic.Uint64

	// Delta feed. numSubs mirrors the total subscriber count so the
	// mutating paths can skip all delta work with one atomic load when
	// nobody listens — the common case, which stays allocation-free.
	numSubs   atomic.Int32
	deltaMu   sync.Mutex
	deltaSeq  int
	subs      map[int]chan Delta
	batchSubs map[int]*batchSub

	// lookupTap, when set, observes every exported find-by-kind lookup
	// (Find and FindForeign — not the internal FindWhere scans a cache
	// rebuild runs, which would echo derived demand back as original).
	// An atomic pointer: the disabled path is one load and a branch, so
	// the Find hot path keeps its allocation contract either way.
	lookupTap atomic.Pointer[func(source, kind string)]

	// Two-tier storage (see viewtier.go). tiered gates every cold-path
	// branch so a memory-only view pays one predictable-false branch at
	// most. storage, kindScan and memBudget are set once by
	// AttachStorage, before concurrent use.
	tiered    bool
	storage   ViewStorage
	kindScan  KindScanner
	memBudget int64
	memBytes  atomic.Int64
	evicted   atomic.Uint64
	coldHits  atomic.Uint64
}

// batchSub spools delta batches for one SubscribeDeltaBatches consumer.
// The spool is unbounded on purpose: the view's mutating paths must
// never block on a subscriber (a Put inside the federation's locks
// would deadlock against the distributor) and must never drop either —
// the distributor has to see every delta, or local changes would reach
// peers only at anti-entropy pace. Memory is bounded by the consumer,
// which drains continuously; per-peer backpressure lives downstream in
// the federation's bounded send queues.
type batchSub struct {
	ch   chan []Delta
	stop chan struct{}
	wake chan struct{} // cap 1: sticky wakeup for the pump

	mu    sync.Mutex
	queue [][]Delta
}

// pump moves spooled batches to the subscriber channel at the
// consumer's pace.
func (b *batchSub) pump() {
	for {
		b.mu.Lock()
		queue := b.queue
		b.queue = nil
		b.mu.Unlock()
		if len(queue) == 0 {
			select {
			case <-b.wake:
				continue
			case <-b.stop:
				close(b.ch)
				return
			}
		}
		for _, deltas := range queue {
			select {
			case b.ch <- deltas:
			case <-b.stop:
				close(b.ch)
				return
			}
		}
	}
}

// NewServiceView returns an empty view.
func NewServiceView() *ServiceView {
	v := &ServiceView{
		keys:      make(map[string]string),
		subs:      make(map[int]chan Delta),
		batchSubs: make(map[int]*batchSub),
	}
	for i := range v.shards {
		v.shards[i].kinds = make(map[string]*kindBucket)
		v.shards[i].armed = make(map[string]armedState)
	}
	return v
}

// SubscribeDeltas returns a channel delivering every subsequent change to
// the view, plus a cancel function releasing the subscription. Delivery
// is best-effort: a subscriber that falls more than buf deltas behind
// loses the overflow (the federation plane's periodic anti-entropy
// repairs exactly this). Deltas are emitted after the view's locks are
// released, so ordering between concurrent mutations is approximate.
func (v *ServiceView) SubscribeDeltas(buf int) (<-chan Delta, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Delta, buf)
	v.deltaMu.Lock()
	v.deltaSeq++
	id := v.deltaSeq
	v.subs[id] = ch
	v.numSubs.Store(int32(len(v.subs)))
	v.deltaMu.Unlock()
	cancel := func() {
		v.deltaMu.Lock()
		if _, ok := v.subs[id]; ok {
			delete(v.subs, id)
			v.numSubs.Store(int32(len(v.subs) + len(v.batchSubs)))
			close(ch)
		}
		v.deltaMu.Unlock()
	}
	return ch, cancel
}

// SubscribeDeltaBatches is the coalescing variant of SubscribeDeltas:
// every view mutation delivers its deltas as one []Delta — a Put and the
// expiry sweep it triggered arrive together — so a consumer that batches
// work (the federation distributor) receives the view's natural batch
// boundaries instead of re-discovering them one channel receive at a
// time. The delivered slice is shared read-only between subscribers and
// must not be mutated or retained past the consumer's own batching
// window. Unlike SubscribeDeltas, delivery is lossless: batches a slow
// consumer has not taken yet spool in memory rather than dropping, so
// the feed is safe to build live replication on. buf sizes the handoff
// channel only; it does not bound the spool.
func (v *ServiceView) SubscribeDeltaBatches(buf int) (<-chan []Delta, func()) {
	if buf <= 0 {
		buf = 64
	}
	sub := &batchSub{
		ch:   make(chan []Delta, buf),
		stop: make(chan struct{}),
		wake: make(chan struct{}, 1),
	}
	go sub.pump()
	v.deltaMu.Lock()
	v.deltaSeq++
	id := v.deltaSeq
	v.batchSubs[id] = sub
	v.numSubs.Store(int32(len(v.subs) + len(v.batchSubs)))
	v.deltaMu.Unlock()
	cancel := func() {
		v.deltaMu.Lock()
		if _, ok := v.batchSubs[id]; ok {
			delete(v.batchSubs, id)
			v.numSubs.Store(int32(len(v.subs) + len(v.batchSubs)))
			close(sub.stop)
		}
		v.deltaMu.Unlock()
	}
	return sub.ch, cancel
}

// Generation returns the view's mutation counter. Any change to the
// answer a Find/FindWhere could give — insert, refresh, withdrawal,
// expiry — has bumped it, so an answer rendered at generation G is
// still exact while Generation() == G (modulo the records' own TTLs,
// which the caller bounds separately: expiry only bumps the counter
// when the lazy sweep collects the record, not at the instant its
// lifetime lapses).
func (v *ServiceView) Generation() uint64 { return v.gen.Load() }

// bumpGen invalidates generation-memoized consumers; every mutation
// that can change a query answer calls it.
func (v *ServiceView) bumpGen() { v.gen.Add(1) }

// wantDeltas gates delta collection on the mutating paths.
func (v *ServiceView) wantDeltas() bool { return v.numSubs.Load() > 0 }

// emitDeltas fans collected deltas out to every subscriber,
// non-blocking. Must be called with no view locks held.
func (v *ServiceView) emitDeltas(deltas []Delta) {
	if len(deltas) == 0 {
		return
	}
	v.deltaMu.Lock()
	defer v.deltaMu.Unlock()
	for _, ch := range v.subs {
		for _, d := range deltas {
			select {
			case ch <- d:
			default: // slow subscriber: drop, anti-entropy repairs
			}
		}
	}
	for _, sub := range v.batchSubs {
		sub.mu.Lock()
		sub.queue = append(sub.queue, deltas)
		sub.mu.Unlock()
		select {
		case sub.wake <- struct{}{}:
		default: // pump already signalled
		}
	}
}

func viewKey(origin SDP, url string) string {
	return string(origin) + "|" + url
}

// shardFor picks the shard for a lowercased kind (FNV-1a).
func (v *ServiceView) shardFor(loweredKind string) *viewShard {
	var h uint32 = 2166136261
	for i := 0; i < len(loweredKind); i++ {
		h ^= uint32(loweredKind[i])
		h *= 16777619
	}
	return &v.shards[h%viewShardCount]
}

// Put inserts or refreshes a record.
func (v *ServiceView) Put(rec ServiceRecord) {
	if rec.URL == "" {
		return
	}
	key := viewKey(rec.Origin, rec.URL)
	lk := strings.ToLower(rec.Kind)
	now := time.Now()
	var deltas []Delta

	v.keysMu.Lock()
	if old, ok := v.keys[key]; ok && old != lk {
		// The record changed kind: evict it from its old bucket so the
		// key stays unique across shards.
		sh := v.shardFor(old)
		sh.mu.Lock()
		v.deleteFromBucket(sh, old, key)
		sh.mu.Unlock()
	}
	v.keys[key] = lk

	sh := v.shardFor(lk)
	sh.mu.Lock()
	bucket := sh.kinds[lk]
	if bucket == nil {
		bucket = &kindBucket{recs: make(map[string]ServiceRecord)}
		sh.kinds[lk] = bucket
	}
	stored := rec.Clone()
	if old, ok := bucket.recs[key]; ok {
		v.memBytes.Add(-recSize(&old))
	}
	bucket.recs[key] = stored
	v.memBytes.Add(recSize(&stored))
	ak := armedKey(lk, key)
	if a, ok := sh.armed[ak]; !ok || rec.Expires.Before(a.at) {
		// Arm (or re-arm earlier). An armed entry with an equal-or-
		// earlier deadline is reused — the sweep re-arms it with the
		// then-current Expires — so a service re-advertised every few
		// hundred ms keeps exactly one live entry instead of one per
		// refresh.
		sh.seq++
		pushExpiry(sh, expiryEntry{at: rec.Expires, kind: lk, key: key, seq: sh.seq})
		sh.armed[ak] = armedState{seq: sh.seq, at: rec.Expires}
	}
	v.bumpGen()
	if v.wantDeltas() {
		deltas = append(deltas, Delta{Op: DeltaPut, Record: stored})
	}
	deltas = v.sweepShardLocked(sh, now, deltas)
	sh.mu.Unlock()

	// Rotate a maintenance sweep over one other shard per Put, so kinds
	// that stop being written or asked about still age out (a Find only
	// sweeps the shard it queried, and only on an expired hit). Reads
	// stay untouched: the hot lookup path never pays for this.
	v.sweepCursor++
	other := &v.shards[v.sweepCursor%viewShardCount]
	if other != sh {
		other.mu.Lock()
		deltas = v.sweepShardLocked(other, now, deltas)
		other.mu.Unlock()
	}
	v.keysMu.Unlock()
	v.emitDeltas(deltas)
}

// Remove withdraws a record (service byebye / deregistration).
func (v *ServiceView) Remove(origin SDP, url string) bool {
	key := viewKey(origin, url)
	var deltas []Delta
	v.keysMu.Lock()
	lk, ok := v.keys[key]
	if !ok {
		v.keysMu.Unlock()
		// The record may live only in the cold tier (spilled): withdraw
		// it from there, announcing the removal so the storage pump and
		// the federation see the withdrawal like any other.
		if rec, spilled := v.coldLookup(origin, url, time.Now()); spilled {
			v.bumpGen()
			v.emitDeltas([]Delta{{Op: DeltaRemove, Record: rec}})
			return true
		}
		return false
	}
	delete(v.keys, key)
	sh := v.shardFor(lk)
	sh.mu.Lock()
	if v.wantDeltas() {
		if bucket := sh.kinds[lk]; bucket != nil {
			if rec, live := bucket.recs[key]; live {
				deltas = append(deltas, Delta{Op: DeltaRemove, Record: rec})
			}
		}
	}
	v.deleteFromBucket(sh, lk, key)
	v.bumpGen()
	sh.mu.Unlock()
	v.keysMu.Unlock()
	v.emitDeltas(deltas)
	return true
}

// Get returns the live record stored under (origin, url). The returned
// record's Attrs map is shared with the view and must be treated as
// read-only, as with Find.
func (v *ServiceView) Get(origin SDP, url string) (ServiceRecord, bool) {
	key := viewKey(origin, url)
	now := time.Now()
	v.keysMu.Lock()
	lk, ok := v.keys[key]
	v.keysMu.Unlock()
	if !ok {
		// Point-miss: the record may have been spilled to the cold tier.
		return v.coldLookup(origin, url, now)
	}
	sh := v.shardFor(lk)
	sh.mu.RLock()
	var rec ServiceRecord
	bucket := sh.kinds[lk]
	if bucket != nil {
		rec, ok = bucket.recs[key]
	} else {
		ok = false
	}
	sh.mu.RUnlock()
	if bucket != nil {
		v.touchBucket(bucket, now)
	}
	if !ok || !rec.Expires.After(now) {
		return ServiceRecord{}, false
	}
	return rec, true
}

// Find returns live records of the given kind (case-insensitive); an
// empty kind matches everything. Results are URL-ordered.
//
// Returned records are value copies, but their Attrs maps are shared with
// the view and MUST be treated as read-only — this is what keeps the
// cached-answer hot path (paper Figure 9b) allocation-free per record.
// The view itself never mutates a stored record's Attrs (Put replaces the
// whole record), so a returned map is immutable in practice. Callers that
// need a mutable copy take one explicitly with ServiceRecord.Clone.
func (v *ServiceView) Find(kind string, now time.Time) []ServiceRecord {
	if t := v.lookupTap.Load(); t != nil && kind != "" {
		(*t)("native", kind)
	}
	return v.find(kind, now, "", false, nil)
}

// FindWhere is Find with a pushed-down filter: keep is evaluated inside
// the shard scan, against the stored record, BEFORE the value copy into
// the result slice — so a selective predicate never pays, in copies or
// in result growth, for the records it rejects. This is the query
// plane's predicate path (SLP-style attribute filters lifted to the
// view): filter-then-copy, where the naive layering would copy the
// whole bucket and filter afterwards.
//
// keep must be fast, must not retain the record pointer past the call
// (it aliases the shard's storage, guarded by the shard read lock), and
// must not call back into the view. A nil keep is exactly Find. The
// Attrs sharing contract of Find applies to the results.
func (v *ServiceView) FindWhere(kind string, now time.Time, keep func(*ServiceRecord) bool) []ServiceRecord {
	return v.find(kind, now, "", false, keep)
}

// FindForeign returns live records of the given kind that did NOT
// originate from the asking SDP — the set a bridge should re-advertise or
// answer with (a unit never answers its own protocol's services; the
// native stack already does that). Same-origin records are filtered
// inside the shard scan, so the caller never pays — in copies or in
// result-slice growth — for records it would discard. The Attrs sharing
// contract of Find applies.
//
// Locally learned records order before federated (Remote) ones: when a
// unit answers first-wins or a client takes the head of the list, it
// prefers the service on its own segment over an equivalent one that is
// several routed hops away. Within each class, order is by URL.
func (v *ServiceView) FindForeign(asking SDP, kind string, now time.Time) []ServiceRecord {
	if t := v.lookupTap.Load(); t != nil && kind != "" {
		(*t)(string(asking), kind)
	}
	return v.find(kind, now, asking, true, nil)
}

// SetLookupTap installs (or, with nil, removes) the lookup observer.
// The tap runs inline on the lookup path and must be cheap and
// non-blocking; it sees the demand source ("native" for direct Find
// calls, the asking SDP for FindForeign) and the queried kind. One tap
// at a time — the predictive subsystem is the intended consumer.
func (v *ServiceView) SetLookupTap(fn func(source, kind string)) {
	if fn == nil {
		v.lookupTap.Store(nil)
		return
	}
	v.lookupTap.Store(&fn)
}

func (v *ServiceView) find(kind string, now time.Time, skip SDP, filterOrigin bool, keep func(*ServiceRecord) bool) []ServiceRecord {
	if kind != "" {
		lk := strings.ToLower(kind)
		sh := v.shardFor(lk)
		sh.mu.RLock()
		out := v.collectLocked(sh, lk, now, skip, filterOrigin, keep, nil, true)
		due := sweepDueLocked(sh, now)
		sh.mu.RUnlock()
		if due {
			v.sweepShard(sh, now)
		}
		sortRecords(out, filterOrigin)
		return out
	}

	// Match-all: walk every shard and bucket (diagnostics path, not the
	// per-message lookup).
	var out []ServiceRecord
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		for lk := range sh.kinds {
			out = v.collectLocked(sh, lk, now, skip, filterOrigin, keep, out, false)
		}
		due := sweepDueLocked(sh, now)
		sh.mu.RUnlock()
		if due {
			v.sweepShard(sh, now)
		}
	}
	sortRecords(out, filterOrigin)
	return out
}

// sweepDueLocked reports whether the shard's earliest expiry deadline has
// passed — the only situation where escalating to a write-locked sweep
// can free anything. Gating on the heap top (one comparison under the
// read lock) keeps the hot lookup path from hammering the global keysMu
// with no-op sweeps while an expired-but-later-armed record lingers.
func sweepDueLocked(sh *viewShard, now time.Time) bool {
	return len(sh.expiry) > 0 && !sh.expiry[0].at.After(now)
}

func (v *ServiceView) collectLocked(sh *viewShard, lk string, now time.Time, skip SDP, filterOrigin bool, keep func(*ServiceRecord) bool, out []ServiceRecord, presize bool) []ServiceRecord {
	bucket := sh.kinds[lk]
	if bucket == nil || len(bucket.recs) == 0 {
		return out
	}
	v.touchBucket(bucket, now)
	if presize && out == nil {
		out = make([]ServiceRecord, 0, len(bucket.recs))
	}
	if keep != nil {
		// One reusable evaluation slot, not &rec: the predicate is an
		// unknown function, so escape analysis would heap-allocate the
		// loop variable on every iteration if its address were taken.
		probe := new(ServiceRecord)
		for _, rec := range bucket.recs {
			if !rec.Expires.After(now) || (filterOrigin && rec.Origin == skip) {
				continue
			}
			*probe = rec
			if !keep(probe) {
				continue // pushed-down predicate: rejected before the copy
			}
			out = append(out, *probe) // value copy; Attrs shared read-only
		}
		return out
	}
	for _, rec := range bucket.recs {
		if !rec.Expires.After(now) {
			continue // lazily skipped; the heap sweep reclaims it
		}
		if filterOrigin && rec.Origin == skip {
			continue
		}
		out = append(out, rec) // value copy; Attrs shared read-only
	}
	return out
}

// sortRecords orders results: Find keeps the historical pure-URL order;
// FindForeign (preferLocal) sorts locally learned records before remote
// ones so first-wins consumers answer with the same-segment service.
func sortRecords(recs []ServiceRecord, preferLocal bool) {
	slices.SortFunc(recs, func(a, b ServiceRecord) int {
		if preferLocal && a.Remote != b.Remote {
			if a.Remote {
				return 1
			}
			return -1
		}
		return strings.Compare(a.URL, b.URL)
	})
}

// Len returns the number of records, live or not, across both tiers.
func (v *ServiceView) Len() int {
	v.keysMu.Lock()
	n := len(v.keys)
	v.keysMu.Unlock()
	return n + v.spillTotal()
}

// sweepShard expires due records of one shard: pop heap entries whose
// deadline passed and delete the records that are genuinely stale
// (a refreshed record has a later Expires and a newer heap entry, so the
// old entry is discarded harmlessly).
func (v *ServiceView) sweepShard(sh *viewShard, now time.Time) {
	v.keysMu.Lock()
	sh.mu.Lock()
	deltas := v.sweepShardLocked(sh, now, nil)
	sh.mu.Unlock()
	v.keysMu.Unlock()
	v.emitDeltas(deltas)
}

// sweepShardLocked requires keysMu and sh.mu held. Expired records are
// appended to deltas (when anyone subscribes) for the caller to emit
// once the locks are released.
func (v *ServiceView) sweepShardLocked(sh *viewShard, now time.Time, deltas []Delta) []Delta {
	for len(sh.expiry) > 0 && !sh.expiry[0].at.After(now) {
		entry := popExpiry(sh)
		ak := armedKey(entry.kind, entry.key)
		if a, ok := sh.armed[ak]; !ok || a.seq != entry.seq {
			continue // orphan superseded by an earlier re-arm: discard
		}
		bucket := sh.kinds[entry.kind]
		var rec ServiceRecord
		var ok bool
		if bucket != nil {
			rec, ok = bucket.recs[entry.key]
		}
		if !ok {
			// Removed or re-put under another kind: the live entry is
			// consumed, so the pair is no longer armed.
			delete(sh.armed, ak)
			continue
		}
		if rec.Expires.After(now) {
			// Refreshed since the entry was armed: re-arm at the
			// current deadline. A pop re-pushes at most once, so the
			// heap never grows here.
			pushExpiry(sh, expiryEntry{at: rec.Expires, kind: entry.kind, key: entry.key, seq: entry.seq})
			sh.armed[ak] = armedState{seq: entry.seq, at: rec.Expires}
			continue
		}
		if v.wantDeltas() {
			deltas = append(deltas, Delta{Op: DeltaExpire, Record: rec})
		}
		v.deleteFromBucket(sh, entry.kind, entry.key)
		v.bumpGen()
		delete(sh.armed, ak)
		// Only unindex the key if it still routes to this bucket (it may
		// have been re-put under another kind).
		if v.keys[entry.key] == entry.kind {
			delete(v.keys, entry.key)
		}
	}
	return deltas
}

// deleteFromBucket removes one record and settles its memory account;
// every removal path (withdrawal, expiry, kind change, eviction) funnels
// through here so the budget estimate cannot drift.
func (v *ServiceView) deleteFromBucket(sh *viewShard, lk, key string) {
	bucket := sh.kinds[lk]
	if bucket == nil {
		return
	}
	if rec, ok := bucket.recs[key]; ok {
		v.memBytes.Add(-recSize(&rec))
	}
	delete(bucket.recs, key)
	if len(bucket.recs) == 0 {
		delete(sh.kinds, lk)
	}
}

// --- expiry min-heap (manual: container/heap would box every entry) ---

func pushExpiry(sh *viewShard, e expiryEntry) {
	sh.expiry = append(sh.expiry, e)
	i := len(sh.expiry) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !sh.expiry[i].at.Before(sh.expiry[parent].at) {
			break
		}
		sh.expiry[i], sh.expiry[parent] = sh.expiry[parent], sh.expiry[i]
		i = parent
	}
}

func popExpiry(sh *viewShard) expiryEntry {
	top := sh.expiry[0]
	last := len(sh.expiry) - 1
	sh.expiry[0] = sh.expiry[last]
	sh.expiry[last] = expiryEntry{} // release strings to the GC
	sh.expiry = sh.expiry[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(sh.expiry) && sh.expiry[left].at.Before(sh.expiry[smallest].at) {
			smallest = left
		}
		if right < len(sh.expiry) && sh.expiry[right].at.Before(sh.expiry[smallest].at) {
			smallest = right
		}
		if smallest == i {
			return top
		}
		sh.expiry[i], sh.expiry[smallest] = sh.expiry[smallest], sh.expiry[i]
		i = smallest
	}
}
