package core

import (
	"fmt"
	"time"

	"indiss/internal/viewstore"
)

// Persistence wiring: with Config.DataDir set, the system opens a
// log-structured viewstore under it, warm-loads the surviving records
// into the view before any unit runs, attaches the store as the view's
// cold tier, and keeps the log current by pumping the view's lossless
// delta-batch feed into it. The log is a cache of discovery state, not
// a ledger: replay reconciliation (append order, TTLs, graves) decides
// what a reboot believes, and anything the log missed is re-learned
// from native traffic or peers.

// defaultMaintainInterval paces store maintenance (flush, grave
// pruning, compaction) and view budget enforcement.
const defaultMaintainInterval = time.Second

// toStoreRecord converts a view record to its log form (unix-ms
// expiry).
func toStoreRecord(r *ServiceRecord) viewstore.Record {
	return viewstore.Record{
		Origin:   string(r.Origin),
		Kind:     r.Kind,
		URL:      r.URL,
		Location: r.Location,
		Attrs:    r.Attrs,
		Expires:  r.Expires.UnixMilli(),
		OriginGW: r.OriginGW,
		Hops:     uint8(min64(int64(r.Hops), 255)),
		Remote:   r.Remote,
	}
}

// fromStoreRecord converts a log record back to view form.
func fromStoreRecord(r *viewstore.Record) ServiceRecord {
	attrs := r.Attrs
	if attrs == nil {
		attrs = map[string]string{}
	}
	return ServiceRecord{
		Origin:   SDP(r.Origin),
		Kind:     r.Kind,
		URL:      r.URL,
		Location: r.Location,
		Attrs:    attrs,
		Expires:  time.UnixMilli(r.Expires),
		OriginGW: r.OriginGW,
		Hops:     int(r.Hops),
		Remote:   r.Remote,
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// storeAdapter narrows *viewstore.Store to the view's ViewStorage
// contract, translating record forms at the boundary.
type storeAdapter struct {
	st *viewstore.Store
}

func (a storeAdapter) Spill(recs []ServiceRecord) error {
	out := make([]viewstore.Record, len(recs))
	for i := range recs {
		out[i] = toStoreRecord(&recs[i])
	}
	_, err := a.st.Spill(out)
	return err
}

func (a storeAdapter) Lookup(origin SDP, url string, now time.Time) (ServiceRecord, bool) {
	rec, ok := a.st.Lookup(string(origin), url, now)
	if !ok {
		return ServiceRecord{}, false
	}
	return fromStoreRecord(&rec), true
}

func (a storeAdapter) SpilledCount() int { return a.st.SpilledCount() }

// ScanKind satisfies the optional KindScanner extension: the query
// plane's cold fallthrough enumerates spilled records of one kind
// through it. The store's fn runs under its lock, so the view-form copy
// is taken inside and handed out by value.
func (a storeAdapter) ScanKind(kind string, now time.Time, fn func(ServiceRecord) bool) {
	a.st.ScanSpilledKind(kind, now, func(r *viewstore.Record) bool {
		return fn(fromStoreRecord(r))
	})
}

// openStorage opens the view log, replays it into the view, attaches
// the cold tier, and starts the pump and maintenance goroutines. Runs
// during NewSystem, before the monitor or any unit — the warm records
// are in place before the first native message arrives.
func (s *System) openStorage() error {
	st, err := viewstore.Open(s.cfg.DataDir, viewstore.Options{})
	if err != nil {
		return fmt.Errorf("core: view storage: %w", err)
	}
	s.store = st

	// Warm-load before subscribing the pump: replayed records are
	// already in the log, so their Put deltas must not re-append them.
	rec := st.Recovered()
	for i := range rec.Records {
		s.view.Put(fromStoreRecord(&rec.Records[i]))
	}
	s.view.AttachStorage(storeAdapter{st}, s.cfg.ViewMemBudget)

	batches, cancel := s.view.SubscribeDeltaBatches(1024)
	s.storeCancel = cancel
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.pumpStore(batches)
	}()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.maintainStore()
	}()
	return nil
}

// pumpStore mirrors view delta batches into the log. The feed is
// lossless (it spools), so the log sees every mutation; one Flush per
// batch amortizes durability to the batch boundary.
func (s *System) pumpStore(batches <-chan []Delta) {
	for batch := range batches {
		for _, d := range batch {
			switch d.Op {
			case DeltaPut:
				r := toStoreRecord(&d.Record)
				_ = s.store.Put(&r)
			case DeltaRemove, DeltaExpire:
				// Expiry is erased too: the record would be dropped on
				// replay anyway, but erasing keeps lookups and the
				// spilled set from serving it meanwhile.
				_ = s.store.Erase(string(d.Record.Origin), d.Record.URL)
			}
		}
		_ = s.store.Flush()
	}
}

// maintainStore periodically compacts the log and enforces the view's
// memory budget.
func (s *System) maintainStore() {
	iv := s.cfg.MaintainInterval
	if iv <= 0 {
		iv = defaultMaintainInterval
	}
	ticker := time.NewTicker(iv)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			now := time.Now()
			_ = s.store.Maintain(now)
			s.view.EnforceBudget(now)
		}
	}
}

// ViewStore returns the persistent view store, nil when the system
// runs memory-only (no DataDir configured).
func (s *System) ViewStore() *viewstore.Store {
	return s.store
}

// Recovered summarizes what the warm boot replayed, the zero value
// when the system runs memory-only or started cold.
func (s *System) Recovered() viewstore.Recovered {
	if s.store == nil {
		return viewstore.Recovered{}
	}
	return s.store.Recovered()
}
