package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"indiss/internal/events"
	"indiss/internal/netapi"
)

// Role is where INDISS is deployed (paper §4.2): "INDISS may be deployed
// on a client, a service or a gateway."
type Role uint8

// Deployment roles.
const (
	RoleClientSide Role = iota + 1
	RoleServiceSide
	RoleGateway
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleClientSide:
		return "client-side"
	case RoleServiceSide:
		return "service-side"
	case RoleGateway:
		return "gateway"
	default:
		return "unknown"
	}
}

// TranslationProfile models INDISS's own processing cost — the Java
// prototype's event machinery was not free, and the §4.3 figures include
// it. Zero values make translation effectively instantaneous, which is
// what tests want.
type TranslationProfile struct {
	// PerMessage is slept once per parse or compose of a native
	// message.
	PerMessage time.Duration
	// XMLParse is slept when a unit engages its XML parser after a
	// SDP_C_PARSER_SWITCH (paper §2.4), modelling the DOM cost.
	XMLParse time.Duration
}

// Delay sleeps the per-message cost.
func (p TranslationProfile) Delay() {
	if p.PerMessage > 0 {
		netapi.SleepPrecise(p.PerMessage)
	}
}

// DelayXML sleeps the XML-parse cost.
func (p TranslationProfile) DelayXML() {
	if p.XMLParse > 0 {
		netapi.SleepPrecise(p.XMLParse)
	}
}

// Unit is an INDISS protocol unit: a parser and composer coupled under a
// DFA, translating between one SDP's native messages and the semantic
// event vocabulary (paper §2.2). Units are event generators and listeners
// at the same time (§3).
type Unit interface {
	// SDP names the protocol the unit translates.
	SDP() SDP
	// Start attaches the unit to its runtime context and subscribes it
	// to the bus. A unit must be started before use.
	Start(ctx *UnitContext) error
	// HandleNative processes one raw native message captured by the
	// monitor: parse into an event stream and publish it (Figure 2
	// step ②). Implementations may block on follow-up exchanges.
	HandleNative(det Detection)
	// OnEvents consumes streams published by peer units — the composer
	// half (Figure 2 step ③).
	OnEvents(env events.Envelope)
	// SetReadvertise toggles active re-advertisement of foreign
	// services into this unit's native protocol — the passive→active
	// switch of paper §4.2 (Figure 6 bottom).
	SetReadvertise(enabled bool)
	// Stop detaches and releases the unit's resources.
	Stop()
}

// SelfFilter records the endpoints INDISS itself emits from, so the
// monitor can ignore the system's own traffic: a unit's composed native
// message must not be re-detected and translated again (a loop the paper's
// architecture avoids by construction, since its units send from sockets
// the monitor does not scan).
type SelfFilter struct {
	mu    sync.Mutex
	addrs map[string]struct{}
}

// NewSelfFilter returns an empty filter.
func NewSelfFilter() *SelfFilter {
	return &SelfFilter{addrs: make(map[string]struct{})}
}

// Mark records an endpoint as INDISS-owned.
func (f *SelfFilter) Mark(addr netapi.Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.addrs[addr.String()] = struct{}{}
}

// Unmark forgets an endpoint, e.g. when a per-query socket closes and its
// ephemeral port may be reused by a native stack on the same host.
func (f *SelfFilter) Unmark(addr netapi.Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.addrs, addr.String())
}

// Has reports whether the endpoint is INDISS-owned.
func (f *SelfFilter) Has(addr netapi.Addr) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.addrs[addr.String()]
	return ok
}

// UnitContext is the runtime a unit operates in.
type UnitContext struct {
	// Stack the unit emits native traffic from.
	Stack netapi.Stack
	// Bus carries event streams between units.
	Bus *events.Bus
	// Role is the deployment placement.
	Role Role
	// View is the shared cache of services discovered so far — what
	// lets INDISS answer from knowledge instead of re-querying (the
	// paper's best case, Figure 9b).
	View *ServiceView
	// Self is where units register the endpoints they emit from.
	Self *SelfFilter
	// NoCache disables answering requests from the view: every foreign
	// request triggers fresh native exchanges. The paper's Figures 8
	// and 9a measure this cold path; Figure 9b measures the cached
	// one.
	NoCache bool
	// Profile is INDISS's own processing cost model.
	Profile TranslationProfile
	// BeforePublish, when set by the System, runs before a stream hits
	// the bus. In dynamic deployments it instantiates the configured
	// peer units when a request stream is about to be published, so
	// the translation targets exist before the stream flows (§3:
	// composition follows "the context and the hosted application
	// components" — an application's request is an instantiation
	// trigger).
	BeforePublish func(s events.Stream)
}

// Publish validates and publishes a stream on the bus under the unit's
// name. Invalid streams are a programming error surfaced loudly.
func (ctx *UnitContext) Publish(source string, s events.Stream) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("core: unit %s published invalid stream: %w", source, err)
	}
	if ctx.BeforePublish != nil {
		ctx.BeforePublish(s)
	}
	ctx.Bus.Publish(source, s)
	return nil
}

// PublishPooled is Publish for pool-backed streams: ownership of ps
// transfers to the bus (or back to the pool on validation failure), and
// each receiving unit releases its share when its composer is done — see
// PERF.md for the ownership rules.
func (ctx *UnitContext) PublishPooled(source string, ps *events.PooledStream) error {
	if err := ps.S.Validate(); err != nil {
		ps.Free()
		return fmt.Errorf("core: unit %s published invalid stream: %w", source, err)
	}
	if ctx.BeforePublish != nil {
		ctx.BeforePublish(ps.S)
	}
	ctx.Bus.PublishPooled(source, ps)
	return nil
}

// UnitFactory builds a fresh, unstarted unit.
type UnitFactory func() Unit

// Registry maps SDP names to unit factories. "Embedded parsers and
// composers are dynamically instantiated" (paper §2.2) — the registry is
// what the System instantiates from when the monitor detects a protocol.
type Registry struct {
	mu        sync.Mutex
	factories map[SDP]UnitFactory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[SDP]UnitFactory)}
}

// Register adds a factory. Registering the same SDP twice replaces it.
func (r *Registry) Register(sdp SDP, f UnitFactory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[sdp] = f
}

// New instantiates a unit for the SDP.
func (r *Registry) New(sdp SDP) (Unit, error) {
	r.mu.Lock()
	f, ok := r.factories[sdp]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no unit registered for %s", sdp)
	}
	return f(), nil
}

// Has reports whether a factory is registered for the SDP.
func (r *Registry) Has(sdp SDP) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.factories[sdp]
	return ok
}

// SDPs lists the registered protocols, sorted.
func (r *Registry) SDPs() []SDP {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SDP, 0, len(r.factories))
	for sdp := range r.factories {
		out = append(out, sdp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
