package core

import (
	"fmt"
	"sync"
	"time"

	"indiss/internal/netapi"
)

// Detection is one raw message the monitor attributed to an SDP. The
// monitor does "no computation, data interpretation or data
// transformation" (paper §2.1): attribution rests solely on the arrival
// port, and the payload is forwarded untouched to the appropriate parser.
type Detection struct {
	// SDP is the detected protocol.
	SDP SDP
	// Port the data arrived on.
	Port int
	// Src is the sender.
	Src netapi.Addr
	// Dst is the address the data was sent to (a multicast group).
	Dst netapi.Addr
	// Data is the raw message, untouched.
	Data []byte
	// At is the arrival time.
	At time.Time
}

// DetectionHandler consumes detections, typically the System forwarding
// raw data to unit parsers (paper Figure 2, steps ① and ②).
type DetectionHandler func(Detection)

// Monitor passively scans the environment on the IANA-registered SDP
// multicast groups (paper §2.1, Figure 1). It binds shared multicast-only
// sockets, so native stacks on the same host are unaffected.
type Monitor struct {
	stack   netapi.Stack
	table   *CorrespondenceTable
	handler DetectionHandler

	mu       sync.Mutex
	conns    []netapi.PacketConn
	detected map[SDP]time.Time
	meters   map[SDP]*RateMeter
	window   time.Duration

	stop chan struct{}
	wg   sync.WaitGroup
}

// MonitorConfig tunes a monitor.
type MonitorConfig struct {
	// Table is the port→SDP correspondence table; nil uses DefaultTable.
	Table *CorrespondenceTable
	// RateWindow is the sliding window of the per-SDP traffic meters
	// (default 1s).
	RateWindow time.Duration
	// Handler receives every detection. Optional.
	Handler DetectionHandler
}

// NewMonitor starts scanning the table's ports on the given stack.
func NewMonitor(stack netapi.Stack, cfg MonitorConfig) (*Monitor, error) {
	table := cfg.Table
	if table == nil {
		table = DefaultTable()
	}
	m := &Monitor{
		stack:    stack,
		table:    table,
		handler:  cfg.Handler,
		detected: make(map[SDP]time.Time),
		meters:   make(map[SDP]*RateMeter),
		window:   cfg.RateWindow,
		stop:     make(chan struct{}),
	}
	for _, port := range table.Ports() {
		entry, _ := table.Lookup(port)
		conn, err := stack.ListenMulticastUDP(port)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("core monitor: port %d: %w", port, err)
		}
		for _, g := range entry.Groups {
			if err := conn.JoinGroup(g); err != nil {
				conn.Close()
				m.Close()
				return nil, fmt.Errorf("core monitor: join %s: %w", g, err)
			}
		}
		m.conns = append(m.conns, conn)
		m.wg.Add(1)
		go func(c netapi.PacketConn, entry ScanPort) {
			defer m.wg.Done()
			m.scan(c, entry)
		}(conn, entry)
	}
	return m, nil
}

// Close stops scanning.
func (m *Monitor) Close() {
	select {
	case <-m.stop:
		return
	default:
	}
	close(m.stop)
	m.mu.Lock()
	conns := m.conns
	m.conns = nil
	m.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	m.wg.Wait()
}

// scan is the per-port loop: data arrival alone identifies the SDP.
func (m *Monitor) scan(conn netapi.PacketConn, entry ScanPort) {
	for {
		dg, err := conn.Recv(0)
		if err != nil {
			return
		}
		now := time.Now()
		m.record(entry.SDP, now, len(dg.Payload))
		if m.handler != nil {
			m.handler(Detection{
				SDP:  entry.SDP,
				Port: entry.Port,
				Src:  dg.Src,
				Dst:  dg.Dst,
				Data: dg.Payload,
				At:   now,
			})
		}
	}
}

func (m *Monitor) record(sdp SDP, now time.Time, size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.detected[sdp] = now
	meter, ok := m.meters[sdp]
	if !ok {
		meter = NewRateMeter(m.window)
		m.meters[sdp] = meter
	}
	meter.Observe(now, size)
}

// Detected returns the SDPs observed so far, with last-seen times.
func (m *Monitor) Detected() map[SDP]time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[SDP]time.Time, len(m.detected))
	for k, v := range m.detected {
		out[k] = v
	}
	return out
}

// Seen reports whether the SDP has been observed.
func (m *Monitor) Seen(sdp SDP) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.detected[sdp]
	return ok
}

// Rate returns the SDP's observed traffic rate in bytes/second.
func (m *Monitor) Rate(sdp SDP) float64 {
	m.mu.Lock()
	meter, ok := m.meters[sdp]
	m.mu.Unlock()
	if !ok {
		return 0
	}
	return meter.Rate(time.Now())
}

// TotalRate sums the rates of every observed SDP — the "network traffic"
// input of the §4.2 threshold policy.
func (m *Monitor) TotalRate() float64 {
	m.mu.Lock()
	meters := make([]*RateMeter, 0, len(m.meters))
	for _, meter := range m.meters {
		meters = append(meters, meter)
	}
	m.mu.Unlock()
	now := time.Now()
	var sum float64
	for _, meter := range meters {
		sum += meter.Rate(now)
	}
	return sum
}
