package query

import (
	"strings"
	"testing"

	"indiss/internal/slp"
)

// FuzzParseQuery hardens the query plane's outermost parsers — the
// query-string decoder and, through the pred key, the SLP predicate
// compiler — against arbitrary client bytes: whatever arrives on the
// query port must error cleanly, never panic, and accepted input must
// obey the parser's own invariants.
func FuzzParseQuery(f *testing.F) {
	f.Add("kind=printer")
	f.Add("kind=printer&pred=(color%3Dyes)")
	f.Add("kind=a+b&pred=(%26(x=*)(y>=2))")
	f.Add("since=18446744073709551615&wait=30s")
	f.Add("pred=(!(a=b*c))&wait=250ms")
	f.Add("kind=%ff%00&pred=(a<=b)")
	f.Add("pred=(|(a=1)(b=2)(c=3))")
	f.Add("kind=&pred=&since=0&wait=0")

	f.Fuzz(func(t *testing.T, qs string) {
		p, err := ParseQuery(qs)
		if err != nil {
			return
		}
		// Accepted waits are always within the long-poll cap.
		if p.Wait < 0 || p.Wait > maxWait {
			t.Fatalf("wait %v escaped the clamp (input %q)", p.Wait, qs)
		}
		// Decoded values never carry an undecoded escape marker that
		// was present as a clean decode (idempotence: decoding the
		// decoded form must not change it again).
		for _, v := range []string{p.Kind, p.Pred} {
			if strings.ContainsAny(v, "%+") {
				continue // literal bytes produced by decoding are fine
			}
			again, err := unescapeComponent(v)
			if err != nil || again != v {
				t.Fatalf("decode not idempotent: %q -> %q, %v", v, again, err)
			}
		}
		// An accepted predicate must compile-or-error without panicking,
		// and a compiled one must evaluate on representative inputs.
		pred, err := slp.ParsePredicate(p.Pred)
		if err != nil {
			return
		}
		pred.EvalMap(nil)
		pred.EvalMap(map[string]string{"a": "1", "color": "yes", "b*": "x"})
		pred.Eval(slp.AttrList{{Name: "a", Values: []string{"1", "2"}}, {Name: "kw"}})
	})
}
