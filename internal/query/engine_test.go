package query

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"indiss/internal/core"
)

func rec(kind, url string, attrs map[string]string, ttl time.Duration, now time.Time) core.ServiceRecord {
	return core.ServiceRecord{
		Origin:  core.SDPSLP,
		Kind:    kind,
		URL:     url,
		Attrs:   attrs,
		Expires: now.Add(ttl),
	}
}

// decodeAnswer strips the HTTP head and unmarshals the JSON body.
func decodeAnswer(t *testing.T, wire []byte) map[string]any {
	t.Helper()
	i := bytes.Index(wire, []byte("\r\n\r\n"))
	if i < 0 {
		t.Fatalf("no header/body split in %q", wire)
	}
	var m map[string]any
	if err := json.Unmarshal(wire[i+4:], &m); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, wire[i+4:])
	}
	return m
}

func answerURLs(t *testing.T, wire []byte) []string {
	t.Helper()
	m := decodeAnswer(t, wire)
	var urls []string
	for _, s := range m["services"].([]any) {
		urls = append(urls, s.(map[string]any)["url"].(string))
	}
	return urls
}

func TestEngineFindByKind(t *testing.T) {
	now := time.Now()
	view := core.NewServiceView()
	view.Put(rec("printer", "service:printer://a", map[string]string{"color": "yes"}, time.Hour, now))
	view.Put(rec("printer", "service:printer://b", map[string]string{"color": "no"}, time.Hour, now))
	view.Put(rec("clock", "service:clock://c", nil, time.Hour, now))

	e := NewEngine(view, "gw-test")
	wire, hit, err := e.AppendAnswer(nil, "printer", "", now)
	if err != nil || hit {
		t.Fatalf("first answer: hit=%v err=%v", hit, err)
	}
	if urls := answerURLs(t, wire); len(urls) != 2 {
		t.Fatalf("printer urls = %v", urls)
	}
	m := decodeAnswer(t, wire)
	if m["count"].(float64) != 2 || m["gateway"].(string) != "gw-test" {
		t.Fatalf("answer meta = %v", m)
	}
	if !strings.HasPrefix(string(wire), "HTTP/1.1 200 OK\r\n") {
		t.Fatalf("not an HTTP response: %q", wire[:20])
	}
}

func TestEnginePredicateFilter(t *testing.T) {
	now := time.Now()
	view := core.NewServiceView()
	view.Put(rec("printer", "service:printer://a", map[string]string{"color": "yes", "ppm": "30"}, time.Hour, now))
	view.Put(rec("printer", "service:printer://b", map[string]string{"color": "no", "ppm": "12"}, time.Hour, now))

	e := NewEngine(view, "gw")
	wire, _, err := e.AppendAnswer(nil, "printer", "(&(color=yes)(ppm>=20))", now)
	if err != nil {
		t.Fatal(err)
	}
	urls := answerURLs(t, wire)
	if len(urls) != 1 || urls[0] != "service:printer://a" {
		t.Fatalf("filtered urls = %v", urls)
	}

	if _, _, err := e.AppendAnswer(nil, "printer", "(broken", now); err == nil {
		t.Fatal("bad predicate accepted")
	}
}

func TestEngineCacheHitAndInvalidation(t *testing.T) {
	now := time.Now()
	view := core.NewServiceView()
	view.Put(rec("printer", "service:printer://a", nil, time.Hour, now))
	e := NewEngine(view, "gw")

	w1, hit, _ := e.AppendAnswer(nil, "printer", "", now)
	if hit {
		t.Fatal("cold query reported a cache hit")
	}
	w2, hit, _ := e.AppendAnswer(nil, "printer", "", now)
	if !hit || !bytes.Equal(w1, w2) {
		t.Fatalf("repeat query: hit=%v equal=%v", hit, bytes.Equal(w1, w2))
	}

	// Any mutation bumps the generation and invalidates the answer.
	view.Put(rec("printer", "service:printer://b", nil, time.Hour, now))
	w3, hit, _ := e.AppendAnswer(nil, "printer", "", now)
	if hit {
		t.Fatal("stale answer served after Put")
	}
	if urls := answerURLs(t, w3); len(urls) != 2 {
		t.Fatalf("post-put urls = %v", urls)
	}

	// Removal invalidates too.
	view.Remove(core.SDPSLP, "service:printer://b")
	w4, hit, _ := e.AppendAnswer(nil, "printer", "", now)
	if hit {
		t.Fatal("stale answer served after Remove")
	}
	if urls := answerURLs(t, w4); len(urls) != 1 {
		t.Fatalf("post-remove urls = %v", urls)
	}
}

func TestEngineCacheExpiryGuard(t *testing.T) {
	now := time.Now()
	view := core.NewServiceView()
	view.Put(rec("printer", "service:printer://a", nil, time.Minute, now))
	e := NewEngine(view, "gw")

	if _, hit, _ := e.AppendAnswer(nil, "printer", "", now); hit {
		t.Fatal("cold hit")
	}
	// Still fresh just before the record lapses...
	if _, hit, _ := e.AppendAnswer(nil, "printer", "", now.Add(59*time.Second)); !hit {
		t.Fatal("fresh answer not served from cache")
	}
	// ...but past the earliest expiry the cache must NOT serve it, even
	// though no sweep ran and the generation never moved.
	wire, hit, _ := e.AppendAnswer(nil, "printer", "", now.Add(2*time.Minute))
	if hit {
		t.Fatal("cache served a lapsed record")
	}
	if m := decodeAnswer(t, wire); m["count"].(float64) != 0 {
		t.Fatalf("lapsed record still in answer: %v", m)
	}
}

func TestEngineEmptyAnswerCached(t *testing.T) {
	view := core.NewServiceView()
	e := NewEngine(view, "gw")
	now := time.Now()
	if _, hit, _ := e.AppendAnswer(nil, "nosuch", "", now); hit {
		t.Fatal("cold hit")
	}
	// Empty answers have no expiry horizon: valid until the view moves.
	if _, hit, _ := e.AppendAnswer(nil, "nosuch", "", now.Add(time.Hour)); !hit {
		t.Fatal("empty answer not cached")
	}
	view.Put(rec("nosuch", "service:nosuch://x", nil, time.Hour, now))
	wire, hit, _ := e.AppendAnswer(nil, "nosuch", "", now)
	if hit {
		t.Fatal("empty answer survived a Put of its kind")
	}
	if urls := answerURLs(t, wire); len(urls) != 1 {
		t.Fatalf("urls = %v", urls)
	}
}

func TestEngineCacheBounded(t *testing.T) {
	view := core.NewServiceView()
	e := NewEngine(view, "gw")
	now := time.Now()
	for i := 0; i < 2*maxCacheEntries; i++ {
		kind := "kind-" + string(rune('a'+i%26)) + appendUintStr(uint64(i))
		if _, _, err := e.AppendAnswer(nil, kind, "", now); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.CacheLen(); n > maxCacheEntries {
		t.Fatalf("cache grew past the cap: %d > %d", n, maxCacheEntries)
	}
}

func appendUintStr(v uint64) string { return string(appendUint(nil, v)) }

func TestRenderEscaping(t *testing.T) {
	now := time.Now()
	view := core.NewServiceView()
	view.Put(rec("weird", `svc://a"b\c`+"\n", map[string]string{"k\t": "v\x01"}, time.Hour, now))
	e := NewEngine(view, `gw"quote`)
	wire, _, err := e.AppendAnswer(nil, "weird", "", now)
	if err != nil {
		t.Fatal(err)
	}
	m := decodeAnswer(t, wire) // json.Unmarshal validates the escaping
	svc := m["services"].([]any)[0].(map[string]any)
	if svc["url"].(string) != `svc://a"b\c`+"\n" {
		t.Fatalf("url round-trip = %q", svc["url"])
	}
	attrs := svc["attrs"].(map[string]any)
	if attrs["k\t"].(string) != "v\x01" {
		t.Fatalf("attrs round-trip = %v", attrs)
	}
}

func TestParseQuery(t *testing.T) {
	p, err := ParseQuery("kind=printer&pred=(color%3Dyes)&since=42&wait=2s")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != "printer" || p.Pred != "(color=yes)" || p.Since != 42 || !p.HasSince || p.Wait != 2*time.Second {
		t.Fatalf("parsed = %+v", p)
	}

	if p, _ := ParseQuery("wait=500"); p.Wait != maxWait {
		t.Fatalf("wait not clamped: %v", p.Wait)
	}
	if p, _ := ParseQuery("kind=a+b"); p.Kind != "a b" {
		t.Fatalf("plus not decoded: %q", p.Kind)
	}
	for _, bad := range []string{"since=x", "since=", "wait=-1s", "bogus=1", "kind=%zz", "kind=%2"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
	if p, err := ParseQuery(""); err != nil || p.HasSince {
		t.Fatalf("empty query: %+v %v", p, err)
	}
}
