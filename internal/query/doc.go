// Package query is the gateway's HTTP/JSON read plane: a lookup API
// over the shared service view, served on its own TCP port next to the
// federation port. It exists because the paper's translation path is
// write-dominated — records flow in from native SDP traffic and peer
// gateways — while campus operators want cheap, protocol-neutral reads:
// dashboards, inventory sweeps, and change feeds that would otherwise
// be phrased as synthetic SLP requests through a full protocol unit.
//
// Three endpoints:
//
//	GET /v1/services?kind=K&pred=P   find records by kind, optionally
//	                                 filtered by an SLP (RFC 2254)
//	                                 predicate evaluated *inside* the
//	                                 view's shard scan (pushdown: a
//	                                 rejected record is never copied)
//	GET /v1/watch?since=N&wait=D     long-poll the view's delta feed
//	GET /debug/vars, /debug/pprof/*  query-plane counters and profiles
//
// The serving path follows the repo's hot-path discipline: pooled
// request/response buffers, exact-size AppendTo-style JSON rendering
// (no encoding/json, no per-request maps), and a per-(kind,predicate)
// answer cache memoized on the view's mutation generation — a cached
// answer is valid until the view mutates or the earliest record in the
// answer expires, so a read-heavy interval serves prerendered wire
// images. Records the memory budget spilled to the cold tier are
// merged into answers via the view's ScanCold, so HTTP clients see the
// whole view, not just the resident slice.
//
// DESIGN.md §12 documents the ports, wire schema, predicate grammar
// and the cache invalidation rule.
package query
