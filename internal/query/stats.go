package query

import (
	"fmt"
	"sync/atomic"
)

// counters is the query plane's hot-path instrumentation: plain atomics,
// one cache line of them, bumped without locks.
type counters struct {
	queries      atomic.Uint64 // /v1/services requests answered
	cacheHits    atomic.Uint64 // answered from a prerendered wire image
	cacheMisses  atomic.Uint64 // scanned and rendered fresh
	watchPolls   atomic.Uint64 // /v1/watch requests answered
	watchActive  atomic.Int64  // long-polls currently parked
	deliveries   atomic.Uint64 // watch events delivered
	bytesOut     atomic.Uint64 // response bytes written
	badRequests  atomic.Uint64 // 4xx responses
	coldMerged   atomic.Uint64 // spilled records merged into answers
	predRejected atomic.Uint64 // records rejected by pushdown predicate

	// Prefetch efficacy (the predictive subsystem drives Engine.Warm;
	// the engine is where hits on warmed entries are observed).
	prefetches     atomic.Uint64 // answers built by Warm
	prefetchHits   atomic.Uint64 // warmed entries later served to a client
	prefetchWasted atomic.Uint64 // warmed entries displaced before any client read
}

// Stats is a point-in-time snapshot of the query plane's counters.
type Stats struct {
	Queries      uint64
	CacheHits    uint64
	CacheMisses  uint64
	WatchPolls   uint64
	WatchActive  int64
	Deliveries   uint64
	BytesOut     uint64
	BadRequests  uint64
	ColdMerged   uint64
	PredRejected uint64

	Prefetches     uint64
	PrefetchHits   uint64
	PrefetchWasted uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Queries:      c.queries.Load(),
		CacheHits:    c.cacheHits.Load(),
		CacheMisses:  c.cacheMisses.Load(),
		WatchPolls:   c.watchPolls.Load(),
		WatchActive:  c.watchActive.Load(),
		Deliveries:   c.deliveries.Load(),
		BytesOut:     c.bytesOut.Load(),
		BadRequests:  c.badRequests.Load(),
		ColdMerged:   c.coldMerged.Load(),
		PredRejected: c.predRejected.Load(),

		Prefetches:     c.prefetches.Load(),
		PrefetchHits:   c.prefetchHits.Load(),
		PrefetchWasted: c.prefetchWasted.Load(),
	}
}

// String renders the snapshot in the one-line key=value form the
// gateway's -stats-interval loop prints.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"queries=%d hits=%d misses=%d watch_polls=%d watch_active=%d delivered=%d bytes_out=%d bad=%d cold_merged=%d pred_rejected=%d",
		s.Queries, s.CacheHits, s.CacheMisses, s.WatchPolls, s.WatchActive,
		s.Deliveries, s.BytesOut, s.BadRequests, s.ColdMerged, s.PredRejected)
	if s.Prefetches > 0 {
		out += fmt.Sprintf(" prefetches=%d prefetch_hits=%d prefetch_wasted=%d",
			s.Prefetches, s.PrefetchHits, s.PrefetchWasted)
	}
	return out
}

// appendVarsJSON renders the snapshot as the /debug/vars JSON body,
// expvar-shaped (flat object of numbers).
func (s Stats) appendVarsJSON(dst []byte) []byte {
	dst = append(dst, '{')
	dst = appendUintField(dst, "queries", s.Queries, false)
	dst = appendUintField(dst, "cache_hits", s.CacheHits, true)
	dst = appendUintField(dst, "cache_misses", s.CacheMisses, true)
	dst = appendUintField(dst, "watch_polls", s.WatchPolls, true)
	dst = appendIntField(dst, "watch_active", s.WatchActive)
	dst = appendUintField(dst, "watch_delivered", s.Deliveries, true)
	dst = appendUintField(dst, "bytes_out", s.BytesOut, true)
	dst = appendUintField(dst, "bad_requests", s.BadRequests, true)
	dst = appendUintField(dst, "cold_merged", s.ColdMerged, true)
	dst = appendUintField(dst, "pred_rejected", s.PredRejected, true)
	dst = appendUintField(dst, "prefetches", s.Prefetches, true)
	dst = appendUintField(dst, "prefetch_hits", s.PrefetchHits, true)
	dst = appendUintField(dst, "prefetch_wasted", s.PrefetchWasted, true)
	return append(dst, '}')
}

func appendUintField(dst []byte, name string, v uint64, comma bool) []byte {
	if comma {
		dst = append(dst, ',')
	}
	dst = append(dst, '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':')
	return appendUint(dst, v)
}

func appendIntField(dst []byte, name string, v int64) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':')
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	return appendUint(dst, uint64(v))
}

// appendUint is strconv.AppendUint without the import spread — the
// package renders every number through this one routine.
func appendUint(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, tmp[i:]...)
}
