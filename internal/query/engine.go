package query

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"indiss/internal/core"
	"indiss/internal/slp"
)

// Engine answers find-by-kind queries from the service view with a
// per-(kind,predicate) answer cache memoized on the view's mutation
// generation — the bumpSummaries pattern the federation's digest plane
// uses, applied to whole prerendered HTTP responses.
//
// A cached answer is valid while BOTH hold:
//
//  1. the view's generation still equals the one read before the scan
//     that built it (any Put/Remove/expiry sweep bumps it), and
//  2. now is before the earliest Expires among the answer's records —
//     lazy expiry means a record can lapse before any sweep notices,
//     and rule 1 alone would keep serving it.
//
// Eviction to the cold tier bumps nothing: spilling moves a record's
// residence, not the answer set, so cached wire images stay valid and
// post-miss rebuilds merge the spilled slice back in via ScanCold.
type Engine struct {
	view *core.ServiceView
	gwID string
	ctrs *counters

	mu    sync.RWMutex
	cache map[qkey]*answer
}

// qkey keys the answer cache. A struct of the two query strings: the
// lookup composes it on the stack, so a cache hit allocates nothing.
type qkey struct {
	kind string
	pred string
}

// answer is one immutable cache entry. Rebuilds install a fresh entry;
// nothing mutates a published one, so readers copy wire under RLock.
// The two prefetch fields are the only exception to immutability: hit
// flips false→true exactly once, under atomics.
type answer struct {
	gen       uint64 // view generation read BEFORE the scan that built this
	minExpiry int64  // unixnano of the earliest record expiry; MaxInt64 when none
	wire      []byte // complete HTTP/1.1 response, headers included
	pred      *slp.Predicate

	prefetched bool        // built by Warm, not by a client miss
	hit        atomic.Bool // a client query was served from this entry
}

// maxCacheEntries bounds the answer cache. Past it, inserting first
// drops generation-stale entries; a workload with more *live* distinct
// queries than this simply stops caching the overflow.
const maxCacheEntries = 1024

// NewEngine builds a query engine over the view. gwID names this
// gateway in response bodies.
func NewEngine(view *core.ServiceView, gwID string) *Engine {
	return &Engine{
		view:  view,
		gwID:  gwID,
		ctrs:  &counters{},
		cache: make(map[qkey]*answer),
	}
}

// attach shares the server's counters so engine hits/misses land in the
// same /debug/vars block.
func (e *Engine) attach(c *counters) { e.ctrs = c }

// AppendAnswer appends the complete HTTP response for a find-by-kind
// query to dst and reports whether it was served from cache. A bad
// predicate returns the error; the caller owes the client a 400.
//
// This is the query plane's hot path: a cache hit is one struct-keyed
// map lookup and one append — zero allocations when dst has capacity.
func (e *Engine) AppendAnswer(dst []byte, kind, pred string, now time.Time) ([]byte, bool, error) {
	k := qkey{kind: kind, pred: pred}
	gen := e.view.Generation()

	e.mu.RLock()
	a := e.cache[k]
	e.mu.RUnlock()
	if a != nil && a.gen == gen && now.UnixNano() < a.minExpiry {
		e.ctrs.cacheHits.Add(1)
		if a.prefetched && a.hit.CompareAndSwap(false, true) {
			e.ctrs.prefetchHits.Add(1)
		}
		return append(dst, a.wire...), true, nil
	}

	a, err := e.build(k, a, now, false)
	if err != nil {
		return dst, false, err
	}
	e.ctrs.cacheMisses.Add(1)
	return append(dst, a.wire...), false, nil
}

// Warm pre-builds the cached answer for (kind, pred) so the next client
// query is a zero-allocation cache hit. A no-op when the entry is
// already fresh. This is the predictive subsystem's prefetch entry
// point — it runs off the request path, so a build here trades
// background work for a foreground hit. Reports whether a fresh entry
// was actually built.
func (e *Engine) Warm(kind, pred string, now time.Time) bool {
	k := qkey{kind: kind, pred: pred}
	gen := e.view.Generation()
	e.mu.RLock()
	a := e.cache[k]
	e.mu.RUnlock()
	if a != nil && a.gen == gen && now.UnixNano() < a.minExpiry {
		return false // already hot
	}
	if _, err := e.build(k, a, now, true); err != nil {
		return false
	}
	e.ctrs.prefetches.Add(1)
	return true
}

// build scans the view, renders the answer and installs it in the
// cache. prev, when non-nil, donates its compiled predicate so a
// generation-invalidated entry does not re-parse. prefetched marks
// entries built by Warm rather than a client miss, for the
// prefetch-efficacy accounting.
func (e *Engine) build(k qkey, prev *answer, now time.Time, prefetched bool) (*answer, error) {
	compiled, err := e.compile(k.pred, prev)
	if err != nil {
		return nil, err
	}
	// A prefetched entry displaced before any client read it was wasted
	// work; count it at displacement, where the fact is known.
	if prev != nil && prev.prefetched && !prev.hit.Load() {
		e.ctrs.prefetchWasted.Add(1)
	}

	// Generation BEFORE the scan: a mutation racing the scan lands a
	// generation the entry does not match, forcing the next query to
	// rebuild. The stale entry can never serve a post-mutation read.
	gen := e.view.Generation()

	var keep func(*core.ServiceRecord) bool
	if compiled != nil {
		keep = func(r *core.ServiceRecord) bool {
			if compiled.EvalMap(r.Attrs) {
				return true
			}
			e.ctrs.predRejected.Add(1)
			return false
		}
	}
	recs := e.view.FindWhere(k.kind, now, keep)

	// Cold fallthrough: records the memory budget spilled still belong
	// to every answer. The resident scan cannot have seen them (spill
	// removes the memory copy), but a concurrent Put may have brought
	// one back — dedup by identity, resident copy wins (it is newer).
	e.view.ScanCold(k.kind, now, func(r core.ServiceRecord) bool {
		if compiled != nil && !compiled.EvalMap(r.Attrs) {
			e.ctrs.predRejected.Add(1)
			return true
		}
		for i := range recs {
			if recs[i].Origin == r.Origin && recs[i].URL == r.URL {
				return true
			}
		}
		recs = append(recs, r)
		e.ctrs.coldMerged.Add(1)
		return true
	})

	a := renderAnswer(e.gwID, k, gen, recs)
	a.pred = compiled // donate the compilation to the next rebuild
	a.prefetched = prefetched
	e.install(k, a)
	return a, nil
}

// compile parses the predicate, reusing prev's compilation when the
// predicate string is unchanged. An empty predicate compiles to nil —
// the scan then skips evaluation entirely instead of calling matchAll
// per record.
func (e *Engine) compile(pred string, prev *answer) (*slp.Predicate, error) {
	if pred == "" {
		return nil, nil
	}
	if prev != nil && prev.pred != nil {
		return prev.pred, nil
	}
	return slp.ParsePredicate(pred)
}

// install publishes the answer, evicting generation-stale entries when
// the cache is full (and refusing growth past the cap if every entry is
// current — the overflow query simply stays uncached).
func (e *Engine) install(k qkey, a *answer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.cache[k]; !exists && len(e.cache) >= maxCacheEntries {
		gen := e.view.Generation()
		for key, old := range e.cache {
			if old.gen != gen {
				delete(e.cache, key)
			}
		}
		if len(e.cache) >= maxCacheEntries {
			return
		}
	}
	e.cache[k] = a
}

// CacheLen reports the number of cached answers (tests, stats).
func (e *Engine) CacheLen() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.cache)
}

// renderAnswer builds the immutable cache entry: JSON body first (into
// a scratch buffer), then the exact-size wire image with headers.
func renderAnswer(gwID string, k qkey, gen uint64, recs []core.ServiceRecord) *answer {
	minExpiry := int64(math.MaxInt64)
	body := make([]byte, 0, 128+192*len(recs))
	body = append(body, `{"gateway":`...)
	body = appendJSONString(body, gwID)
	body = append(body, `,"kind":`...)
	body = appendJSONString(body, k.kind)
	if k.pred != "" {
		body = append(body, `,"predicate":`...)
		body = appendJSONString(body, k.pred)
	}
	body = append(body, `,"generation":`...)
	body = appendUint(body, gen)
	body = append(body, `,"count":`...)
	body = appendUint(body, uint64(len(recs)))
	body = append(body, `,"services":[`...)
	for i := range recs {
		if i > 0 {
			body = append(body, ',')
		}
		body = appendRecordJSON(body, &recs[i])
		if exp := recs[i].Expires.UnixNano(); exp < minExpiry {
			minExpiry = exp
		}
	}
	body = append(body, ']', '}')

	return &answer{
		gen:       gen,
		minExpiry: minExpiry,
		wire:      renderResponse(200, "OK", contentTypeJSON, body, false),
	}
}

// appendRecordJSON renders one service record. Empty provenance fields
// are omitted: local records stay five fields wide on the wire.
func appendRecordJSON(dst []byte, r *core.ServiceRecord) []byte {
	dst = append(dst, `{"origin":`...)
	dst = appendJSONString(dst, string(r.Origin))
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, r.Kind)
	dst = append(dst, `,"url":`...)
	dst = appendJSONString(dst, r.URL)
	if r.Location != "" {
		dst = append(dst, `,"location":`...)
		dst = appendJSONString(dst, r.Location)
	}
	dst = append(dst, `,"expires_ms":`...)
	dst = appendUint(dst, uint64(r.Expires.UnixMilli()))
	if r.OriginGW != "" {
		dst = append(dst, `,"origin_gw":`...)
		dst = appendJSONString(dst, r.OriginGW)
	}
	if r.Hops > 0 {
		dst = append(dst, `,"hops":`...)
		dst = appendUint(dst, uint64(r.Hops))
	}
	if r.Remote {
		dst = append(dst, `,"remote":true`...)
	}
	if len(r.Attrs) > 0 {
		dst = append(dst, `,"attrs":{`...)
		first := true
		for ak, av := range r.Attrs {
			if !first {
				dst = append(dst, ',')
			}
			first = false
			dst = appendJSONString(dst, ak)
			dst = append(dst, ':')
			dst = appendJSONString(dst, av)
		}
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

// appendJSONString renders s as a JSON string literal. Control bytes
// get \u00XX, quote and backslash get their short escapes; multi-byte
// UTF-8 passes through raw, which JSON permits.
func appendJSONString(dst []byte, s string) []byte {
	const hexDigits = "0123456789abcdef"
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

const (
	contentTypeJSON = "application/json"
	contentTypeText = "text/plain; charset=utf-8"
)

// renderResponse composes a complete HTTP/1.1 response in one
// exact-size allocation. closeConn adds Connection: close (the
// streamed-profile path); everything else keeps the connection alive.
func renderResponse(code int, status, ctype string, body []byte, closeConn bool) []byte {
	head := len("HTTP/1.1 ") + 3 + 1 + len(status) + 2 +
		len("Content-Type: ") + len(ctype) + 2 +
		len("Content-Length: ") + decimalLen(len(body)) + 2 + 2
	if closeConn {
		head += len("Connection: close\r\n")
	}
	wire := make([]byte, 0, head+len(body))
	wire = append(wire, "HTTP/1.1 "...)
	wire = appendUint(wire, uint64(code))
	wire = append(wire, ' ')
	wire = append(wire, status...)
	wire = append(wire, "\r\nContent-Type: "...)
	wire = append(wire, ctype...)
	wire = append(wire, "\r\nContent-Length: "...)
	wire = appendUint(wire, uint64(len(body)))
	if closeConn {
		wire = append(wire, "\r\nConnection: close"...)
	}
	wire = append(wire, "\r\n\r\n"...)
	return append(wire, body...)
}

func decimalLen(n int) int {
	l := 1
	for n >= 10 {
		n /= 10
		l++
	}
	return l
}
