package query

import (
	"bytes"
	"fmt"
	"io"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indiss/internal/core"
	"indiss/internal/httpx"
	"indiss/internal/netapi"
)

// DefaultPort is the query plane's default TCP listening port, one
// above the paper-era federation port block.
const DefaultPort = 7780

// Config tunes one query server.
type Config struct {
	// ListenPort: 0 uses DefaultPort, negative binds an ephemeral port
	// (tests), positive binds that port.
	ListenPort int
	// GatewayID names this gateway in response bodies.
	GatewayID string
	// WatchRing overrides the delta ring capacity (default 4096).
	WatchRing int
}

// Server is the HTTP/JSON query endpoint: an accept loop on its own
// TCP port, keep-alive connections, one goroutine per client.
type Server struct {
	stack    netapi.Stack
	view     *core.ServiceView
	engine   *Engine
	hub      *watchHub
	listener netapi.Listener
	gwID     string
	ctrs     counters

	// observer, when set, sees every well-formed find-by-kind lookup
	// (client IP, kind) — the predictive subsystem's feed. An atomic
	// pointer so the serve hot path pays one load and a nil check.
	observer atomic.Pointer[func(client, kind string)]

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// New binds the query port and starts serving. The returned server
// satisfies io.Closer for the core system's QueryHook.
func New(stack netapi.Stack, view *core.ServiceView, cfg Config) (*Server, error) {
	port := cfg.ListenPort
	switch {
	case port == 0:
		port = DefaultPort
	case port < 0:
		port = 0 // ephemeral
	}
	l, err := stack.ListenTCP(port)
	if err != nil {
		return nil, fmt.Errorf("query: listen: %w", err)
	}
	gwID := cfg.GatewayID
	if gwID == "" {
		gwID = stack.Name()
	}
	s := &Server{
		stack:    stack,
		view:     view,
		listener: l,
		gwID:     gwID,
	}
	s.engine = NewEngine(view, gwID)
	s.engine.attach(&s.ctrs)
	s.hub = newWatchHub(view, cfg.WatchRing)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	return s, nil
}

// Addr returns the bound query endpoint.
func (s *Server) Addr() netapi.Addr { return s.listener.Addr() }

// Engine exposes the answer cache (benchmarks, budget tests).
func (s *Server) Engine() *Engine { return s.engine }

// SetLookupObserver installs (or, with nil, removes) the lookup
// observer. The observer runs on the request path and must be cheap and
// non-blocking; it sees the client's IP and the queried kind.
func (s *Server) SetLookupObserver(fn func(client, kind string)) {
	if fn == nil {
		s.observer.Store(nil)
		return
	}
	s.observer.Store(&fn)
}

// Stats snapshots the query-plane counters.
func (s *Server) Stats() Stats { return s.ctrs.snapshot() }

// Close stops accepting, releases parked watchers and waits for
// in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.listener.Close()
	s.hub.close()
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	for {
		st, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(st)
		}()
	}
}

// idleTimeout bounds how long a keep-alive connection may sit silent
// between requests. Long-polls re-arm it per read, so a watch with
// wait up to maxWait fits.
const idleTimeout = 45 * time.Second

// serveConn runs one keep-alive connection: read a request, answer it,
// repeat. Buffers are pooled; the steady-state serve path allocates
// only what request parsing pins.
func (s *Server) serveConn(st netapi.Stream) {
	defer st.Close()
	rb := httpx.AcquireBuf()
	wb := httpx.AcquireBuf()
	defer httpx.ReleaseBuf(rb)
	defer httpx.ReleaseBuf(wb)
	client := st.RemoteAddr().IP

	for {
		st.SetReadTimeout(idleTimeout)
		raw, err := readHead(st, (*rb)[:0])
		if err != nil {
			return
		}
		*rb = raw[:0]

		method, target, ok := parseRequestLine(raw)
		out := (*wb)[:0]
		keepAlive := true
		switch {
		case !ok:
			out = s.errorResponse(out, 400, "Bad Request", "malformed request")
		case method != "GET":
			out = s.errorResponse(out, 405, "Method Not Allowed", "GET only")
		default:
			out, keepAlive = s.route(out, target, client, st)
		}
		if out != nil {
			if _, err := st.Write(out); err != nil {
				*wb = out[:0]
				return
			}
			s.ctrs.bytesOut.Add(uint64(len(out)))
		}
		*wb = out[:0]
		if !keepAlive || connectionClose(raw) {
			return
		}
	}
}

// route dispatches one request. It returns the response bytes (nil if
// the handler already wrote to the stream, e.g. a streamed CPU
// profile) and whether to keep the connection.
func (s *Server) route(out []byte, target, client string, st netapi.Stream) ([]byte, bool) {
	path, qs := splitTarget(target)
	switch {
	case path == "/v1/services":
		return s.handleServices(out, qs, client), true
	case path == "/v1/watch":
		return s.handleWatch(out, qs), true
	case path == "/debug/vars":
		body := s.Stats().appendVarsJSON(nil)
		return append(out, renderResponse(200, "OK", contentTypeJSON, body, false)...), true
	case strings.HasPrefix(path, "/debug/pprof/"):
		return s.handlePprof(out, path, qs, st)
	default:
		s.ctrs.badRequests.Add(1)
		return s.errorResponse(out, 404, "Not Found", "unknown path"), true
	}
}

func (s *Server) handleServices(out []byte, qs, client string) []byte {
	p, err := ParseQuery(qs)
	if err != nil {
		s.ctrs.badRequests.Add(1)
		return s.errorResponse(out, 400, "Bad Request", err.Error())
	}
	s.ctrs.queries.Add(1)
	if obs := s.observer.Load(); obs != nil {
		(*obs)(client, p.Kind)
	}
	out, _, err = s.engine.AppendAnswer(out, p.Kind, p.Pred, time.Now())
	if err != nil {
		s.ctrs.badRequests.Add(1)
		return s.errorResponse(out, 400, "Bad Request", err.Error())
	}
	return out
}

func (s *Server) handleWatch(out []byte, qs string) []byte {
	p, err := ParseQuery(qs)
	if err != nil {
		s.ctrs.badRequests.Add(1)
		return s.errorResponse(out, 400, "Bad Request", err.Error())
	}
	s.ctrs.watchPolls.Add(1)
	s.ctrs.watchActive.Add(1)
	body, delivered := s.hub.poll(nil, p, s.gwID)
	s.ctrs.watchActive.Add(-1)
	s.ctrs.deliveries.Add(uint64(delivered))
	return append(out, renderResponse(200, "OK", contentTypeJSON, body, false)...)
}

// handlePprof serves runtime profiles without net/http: named profiles
// render into a buffer and ship with Content-Length; the CPU profile
// streams for ?seconds=N and close-delimits the body.
func (s *Server) handlePprof(out []byte, path, qs string, st netapi.Stream) ([]byte, bool) {
	name := strings.TrimPrefix(path, "/debug/pprof/")
	if name == "profile" {
		return nil, s.streamCPUProfile(st, qs)
	}
	if name == "" {
		var b bytes.Buffer
		for _, p := range pprof.Profiles() {
			fmt.Fprintf(&b, "%s\t%d\n", p.Name(), p.Count())
		}
		return append(out, renderResponse(200, "OK", contentTypeText, b.Bytes(), false)...), true
	}
	p := pprof.Lookup(name)
	if p == nil {
		s.ctrs.badRequests.Add(1)
		return s.errorResponse(out, 404, "Not Found", "unknown profile"), true
	}
	var b bytes.Buffer
	debug := 0
	if name == "goroutine" {
		debug = 1
	}
	if err := p.WriteTo(&b, debug); err != nil {
		return s.errorResponse(out, 500, "Internal Server Error", err.Error()), true
	}
	ctype := "application/octet-stream"
	if debug > 0 {
		ctype = contentTypeText
	}
	return append(out, renderResponse(200, "OK", ctype, b.Bytes(), false)...), true
}

// streamCPUProfile writes a CPU profile straight onto the stream. The
// body is close-delimited, so the connection never outlives it.
// Returns false: the connection must close.
func (s *Server) streamCPUProfile(st netapi.Stream, qs string) bool {
	seconds := 5
	if _, val, ok := strings.Cut(qs, "seconds="); ok {
		if i := strings.IndexByte(val, '&'); i >= 0 {
			val = val[:i]
		}
		if n, err := parseUint(val); err == nil && n > 0 && n <= 120 {
			seconds = int(n)
		}
	}
	head := []byte("HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\nConnection: close\r\n\r\n")
	if _, err := st.Write(head); err != nil {
		return false
	}
	s.ctrs.bytesOut.Add(uint64(len(head)))
	var b bytes.Buffer
	if err := pprof.StartCPUProfile(&b); err != nil {
		return false // another profile is running; body stays empty
	}
	time.Sleep(time.Duration(seconds) * time.Second)
	pprof.StopCPUProfile()
	if _, err := st.Write(b.Bytes()); err == nil {
		s.ctrs.bytesOut.Add(uint64(b.Len()))
	}
	return false
}

func (s *Server) errorResponse(out []byte, code int, status, msg string) []byte {
	body := appendJSONString([]byte(`{"error":`), msg)
	body = append(body, '}')
	return append(out, renderResponse(code, status, contentTypeJSON, body, false)...)
}

// readHead pulls one request head (through CRLFCRLF) off the stream.
// The query API is GET-only, so request bodies are not read.
func readHead(st netapi.Stream, buf []byte) ([]byte, error) {
	for {
		if i := bytes.Index(buf, []byte("\r\n\r\n")); i >= 0 {
			return buf[:i+4], nil
		}
		if len(buf) > 16<<10 {
			return nil, fmt.Errorf("query: request head too large")
		}
		if len(buf) == cap(buf) {
			grown := make([]byte, len(buf), 2*cap(buf)+1024)
			copy(grown, buf)
			buf = grown
		}
		n, err := st.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if n == 0 {
			if err == nil {
				err = io.EOF
			}
			return nil, err
		}
	}
}

// parseRequestLine extracts the method and target from the head's
// first line without splitting the rest.
func parseRequestLine(head []byte) (method, target string, ok bool) {
	end := bytes.IndexByte(head, '\r')
	if end < 0 {
		return "", "", false
	}
	line := head[:end]
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 < 0 {
		return "", "", false
	}
	sp2 := bytes.IndexByte(line[sp1+1:], ' ')
	if sp2 < 0 {
		return "", "", false
	}
	return string(line[:sp1]), string(line[sp1+1 : sp1+1+sp2]), true
}

// connectionClose reports whether the request asked to drop keep-alive.
func connectionClose(head []byte) bool {
	return bytes.Contains(head, []byte("Connection: close")) ||
		bytes.Contains(head, []byte("connection: close"))
}
