package query

import (
	"sync"
	"time"

	"indiss/internal/core"
)

// watchHub turns the view's lossless delta-batch feed into a
// sequence-numbered ring of prerendered JSON events that any number of
// long-poll clients cursor through independently. One goroutine drains
// the feed; pollers never touch the view.
type watchHub struct {
	cancel func()
	done   chan struct{}

	mu     sync.Mutex
	ring   []watchEvent // fixed capacity, modular indexing by seq
	head   uint64       // seq the NEXT event will get
	count  int          // live events: seqs [head-count, head)
	notify chan struct{} // closed and replaced on every append
	closed bool
}

type watchEvent struct {
	seq  uint64
	wire []byte // `{"seq":N,"op":"put","service":{...}}`
}

// defaultRingSize holds this many most-recent events; a poller whose
// cursor falls off the tail is told to resync (re-query and rejoin at
// the head) instead of silently missing deltas.
const defaultRingSize = 4096

func newWatchHub(view *core.ServiceView, ringSize int) *watchHub {
	if ringSize <= 0 {
		ringSize = defaultRingSize
	}
	batches, cancel := view.SubscribeDeltaBatches(256)
	h := &watchHub{
		cancel: cancel,
		done:   make(chan struct{}),
		ring:   make([]watchEvent, ringSize),
		notify: make(chan struct{}),
	}
	go h.run(batches)
	return h
}

func (h *watchHub) run(batches <-chan []core.Delta) {
	defer close(h.done)
	for batch := range batches {
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			return
		}
		for i := range batch {
			d := &batch[i]
			wire := make([]byte, 0, 96+64)
			wire = append(wire, `{"seq":`...)
			wire = appendUint(wire, h.head)
			wire = append(wire, `,"op":"`...)
			wire = append(wire, opName(d.Op)...)
			wire = append(wire, `","service":`...)
			wire = appendRecordJSON(wire, &d.Record)
			wire = append(wire, '}')
			h.ring[h.head%uint64(len(h.ring))] = watchEvent{seq: h.head, wire: wire}
			h.head++
			if h.count < len(h.ring) {
				h.count++
			}
		}
		// Wake every parked poller; each re-checks its own cursor.
		close(h.notify)
		h.notify = make(chan struct{})
		h.mu.Unlock()
	}
}

func opName(op core.DeltaOp) string {
	switch op {
	case core.DeltaPut:
		return "put"
	case core.DeltaRemove:
		return "remove"
	case core.DeltaExpire:
		return "expire"
	}
	return "unknown"
}

// close stops the feed drain. Parked pollers are released by waking
// them one last time.
func (h *watchHub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	close(h.notify)
	h.notify = make(chan struct{})
	h.mu.Unlock()
	h.cancel()
	<-h.done
}

// poll appends the JSON body answering one /v1/watch request to dst.
// Semantics:
//
//   - no since param: return the current head immediately — the client
//     learns its cursor without consuming anything.
//   - since within the ring: return events [since, head), parking up to
//     wait when the range is empty.
//   - since off the ring tail (or past head): resync — the client's
//     cursor is unservable; it should re-query /v1/services and rejoin
//     at the returned head.
//
// maxEvents bounds one response; leftover events arrive on the next
// poll (the cursor only advances by what was delivered).
func (h *watchHub) poll(dst []byte, p Params, gwID string) ([]byte, int) {
	const maxEvents = 256
	deadline := time.Now().Add(p.Wait)
	for {
		h.mu.Lock()
		head, tail := h.head, h.head-uint64(h.count)
		closed := h.closed
		switch {
		case !p.HasSince:
			h.mu.Unlock()
			return appendWatchBody(dst, gwID, head, false, nil), 0

		case p.Since > head || p.Since < tail:
			h.mu.Unlock()
			return appendWatchBody(dst, gwID, head, true, nil), 0

		case p.Since < head:
			n := int(head - p.Since)
			if n > maxEvents {
				n = maxEvents
			}
			// Copy the wire slices out under the lock: ring slots are
			// overwritten in place once the ring wraps.
			events := make([][]byte, n)
			for i := 0; i < n; i++ {
				events[i] = h.ring[(p.Since+uint64(i))%uint64(len(h.ring))].wire
			}
			h.mu.Unlock()
			return appendWatchBody(dst, gwID, p.Since+uint64(n), false, events), n
		}

		// Cursor at head: nothing new. Park until an append, the wait
		// deadline, or hub shutdown.
		if closed || p.Wait <= 0 {
			h.mu.Unlock()
			return appendWatchBody(dst, gwID, head, false, nil), 0
		}
		ch := h.notify
		h.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return appendWatchBody(dst, gwID, head, false, nil), 0
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			p.Wait = 0 // answer whatever the re-check finds, immediately
		}
	}
}

// appendWatchBody renders the /v1/watch response body. next is the
// cursor for the client's next poll.
func appendWatchBody(dst []byte, gwID string, next uint64, resync bool, events [][]byte) []byte {
	dst = append(dst, `{"gateway":`...)
	dst = appendJSONString(dst, gwID)
	dst = append(dst, `,"next":`...)
	dst = appendUint(dst, next)
	if resync {
		dst = append(dst, `,"resync":true`...)
	}
	dst = append(dst, `,"events":[`...)
	for i, ev := range events {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, ev...)
	}
	return append(dst, ']', '}')
}
