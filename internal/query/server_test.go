package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"indiss/internal/core"
	"indiss/internal/netapi"
	"indiss/internal/simnet"
)

// testServer stands a query server on a one-host simnet segment and
// returns a dial helper.
func testServer(t *testing.T, view *core.ServiceView) (*Server, func(target string) (int, []byte)) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	t.Cleanup(func() { net.Close() })
	host := net.MustAddHost("gw", "10.0.0.9")
	srv, err := New(host, view, Config{ListenPort: -1, GatewayID: "gw-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	client := net.MustAddHost("client", "10.0.0.10")
	get := func(target string) (int, []byte) {
		t.Helper()
		code, body, err := httpGet(client, srv.Addr(), target, 10*time.Second)
		if err != nil {
			t.Fatalf("GET %s: %v", target, err)
		}
		return code, body
	}
	return srv, get
}

// httpGet is a minimal one-shot client for tests and the load rig's
// shape: dial, write a GET, read one response.
func httpGet(stack netapi.Stack, addr netapi.Addr, target string, timeout time.Duration) (int, []byte, error) {
	st, err := stack.DialTCP(addr)
	if err != nil {
		return 0, nil, err
	}
	defer st.Close()
	st.SetReadTimeout(timeout)
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", target, addr)
	if _, err := st.Write([]byte(req)); err != nil {
		return 0, nil, err
	}
	var buf []byte
	tmp := make([]byte, 4096)
	for {
		n, err := st.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	return parseTestResponse(buf)
}

func parseTestResponse(raw []byte) (int, []byte, error) {
	i := bytes.Index(raw, []byte("\r\n\r\n"))
	if i < 0 {
		return 0, nil, fmt.Errorf("no head/body split in %q", raw)
	}
	var code int
	if _, err := fmt.Sscanf(string(raw[:i]), "HTTP/1.1 %d", &code); err != nil {
		return 0, nil, err
	}
	return code, raw[i+4:], nil
}

func TestServerServices(t *testing.T) {
	now := time.Now()
	view := core.NewServiceView()
	view.Put(rec("printer", "service:printer://a", map[string]string{"color": "yes"}, time.Hour, now))
	view.Put(rec("printer", "service:printer://b", map[string]string{"color": "no"}, time.Hour, now))
	srv, get := testServer(t, view)

	code, body := get("/v1/services?kind=printer")
	if code != 200 {
		t.Fatalf("status = %d body=%s", code, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("body: %v", err)
	}
	if m["count"].(float64) != 2 {
		t.Fatalf("count = %v", m["count"])
	}

	code, body = get("/v1/services?kind=printer&pred=(color%3Dyes)")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	_ = json.Unmarshal(body, &m)
	if m["count"].(float64) != 1 {
		t.Fatalf("predicate count = %v (body %s)", m["count"], body)
	}

	if code, _ := get("/v1/services?kind=printer&pred=(broken"); code != 400 {
		t.Fatalf("bad predicate: status = %d", code)
	}
	if code, _ := get("/v1/nope"); code != 404 {
		t.Fatalf("unknown path: status = %d", code)
	}

	st := srv.Stats()
	if st.Queries < 2 || st.BadRequests < 2 || st.BytesOut == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerKeepAlive(t *testing.T) {
	now := time.Now()
	view := core.NewServiceView()
	view.Put(rec("clock", "service:clock://x", nil, time.Hour, now))
	srv, _ := testServer(t, view)

	// Two requests down one connection: the second must be answered
	// (keep-alive), and the second answer should be a cache hit.
	client := serverPeer(t, srv)
	st, err := client.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetReadTimeout(5 * time.Second)
	for i := 0; i < 2; i++ {
		if _, err := st.Write([]byte("GET /v1/services?kind=clock HTTP/1.1\r\nHost: gw\r\n\r\n")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := readOneResponse(st); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
	}
	if s := srv.Stats(); s.CacheHits == 0 {
		t.Fatalf("no cache hit across keep-alive requests: %+v", s)
	}
}

// serverPeer adds a client host to the network the server's stack lives
// on.
func serverPeer(t *testing.T, srv *Server) netapi.Stack {
	t.Helper()
	host, ok := srv.stack.(*simnet.Host)
	if !ok {
		t.Fatal("test server not on simnet")
	}
	return host.Network().MustAddHost("peer-"+t.Name(), "10.0.0.77")
}

// readOneResponse consumes exactly one Content-Length-framed response.
func readOneResponse(st netapi.Stream) error {
	var buf []byte
	tmp := make([]byte, 2048)
	for {
		i := bytes.Index(buf, []byte("\r\n\r\n"))
		if i >= 0 {
			want := 0
			fmt.Sscanf(string(buf[:i]), "HTTP/1.1 %d", new(int))
			for _, line := range strings.Split(string(buf[:i]), "\r\n") {
				if n, ok := strings.CutPrefix(line, "Content-Length: "); ok {
					fmt.Sscanf(n, "%d", &want)
				}
			}
			if len(buf) >= i+4+want {
				return nil
			}
		}
		n, err := st.Read(tmp)
		if err != nil {
			return err
		}
		buf = append(buf, tmp[:n]...)
	}
}

func TestServerDebugVars(t *testing.T) {
	view := core.NewServiceView()
	_, get := testServer(t, view)
	get("/v1/services?kind=x")
	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var vars map[string]float64
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("vars not JSON: %v\n%s", err, body)
	}
	if vars["queries"] != 1 {
		t.Fatalf("vars = %v", vars)
	}
}

func TestServerPprof(t *testing.T) {
	view := core.NewServiceView()
	_, get := testServer(t, view)
	code, body := get("/debug/pprof/goroutine")
	if code != 200 || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("goroutine profile: status=%d body[:40]=%q", code, body[:min(40, len(body))])
	}
	if code, _ := get("/debug/pprof/nosuch"); code != 404 {
		t.Fatalf("unknown profile: status = %d", code)
	}
	code, body = get("/debug/pprof/")
	if code != 200 || !bytes.Contains(body, []byte("heap")) {
		t.Fatalf("profile index: status=%d body=%q", code, body)
	}
}

func TestWatchLongPoll(t *testing.T) {
	now := time.Now()
	view := core.NewServiceView()
	_, get := testServer(t, view)

	// First poll with no cursor: learn the head.
	_, body := get("/v1/watch")
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	next := uint64(m["next"].(float64))

	// Park a long-poll, then mutate the view; the poll must deliver.
	resc := make(chan []byte, 1)
	go func() {
		_, b := get(fmt.Sprintf("/v1/watch?since=%d&wait=5s", next))
		resc <- b
	}()
	time.Sleep(50 * time.Millisecond)
	view.Put(rec("printer", "service:printer://w", nil, time.Hour, now))

	select {
	case b := <-resc:
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		events := m["events"].([]any)
		if len(events) != 1 {
			t.Fatalf("events = %v", m)
		}
		ev := events[0].(map[string]any)
		if ev["op"].(string) != "put" || ev["service"].(map[string]any)["url"].(string) != "service:printer://w" {
			t.Fatalf("event = %v", ev)
		}
		if uint64(m["next"].(float64)) != next+1 {
			t.Fatalf("next = %v, want %d", m["next"], next+1)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never delivered")
	}

	// A cursor far off the ring: resync.
	_, body = get("/v1/watch?since=999999&wait=0")
	_ = json.Unmarshal(body, &m)
	if m["resync"] != true {
		t.Fatalf("no resync for wild cursor: %v", m)
	}
}

func TestWatchImmediateDrain(t *testing.T) {
	now := time.Now()
	view := core.NewServiceView()
	_, get := testServer(t, view)

	_, body := get("/v1/watch")
	var m map[string]any
	_ = json.Unmarshal(body, &m)
	next := uint64(m["next"].(float64))

	for i := 0; i < 5; i++ {
		view.Put(rec("clock", fmt.Sprintf("service:clock://%d", i), nil, time.Hour, now))
	}
	// Give the hub goroutine a beat to drain the batch feed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body = get(fmt.Sprintf("/v1/watch?since=%d", next))
		_ = json.Unmarshal(body, &m)
		if len(m["events"].([]any)) == 5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if events := m["events"].([]any); len(events) != 5 {
		t.Fatalf("drained %d events, want 5", len(events))
	}
}
