package query

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// ErrBadQuery reports a malformed request target or query string.
var ErrBadQuery = errors.New("query: malformed query string")

// Params is a parsed request query string. The string fields alias or
// decode the input; they are only valid while the request buffer is.
type Params struct {
	// Kind filters /v1/services by canonical service kind; empty
	// matches every kind.
	Kind string
	// Pred is the raw SLP predicate (RFC 2254 subset), empty for none.
	Pred string
	// Since is the /v1/watch cursor: the first event sequence the
	// client has not seen. Meaningful only when HasSince.
	Since    uint64
	HasSince bool
	// Wait bounds how long /v1/watch parks when no events are ready.
	// Zero answers immediately.
	Wait time.Duration
}

// maxWait caps a long-poll park so an abandoned client cannot pin a
// handler goroutine past the idle window.
const maxWait = 30 * time.Second

// ParseQuery parses an application/x-www-form-urlencoded query string
// (the part after '?'). Recognized keys: kind, pred, since, wait.
// Unknown keys are rejected — the API is small and a typo should fail
// loudly, not silently match everything. Values without '%' or '+'
// are aliased, not copied, so the common clean query allocates nothing
// beyond the Params value itself.
func ParseQuery(qs string) (Params, error) {
	var p Params
	for len(qs) > 0 {
		pair := qs
		if i := strings.IndexByte(qs, '&'); i >= 0 {
			pair, qs = qs[:i], qs[i+1:]
		} else {
			qs = ""
		}
		if pair == "" {
			continue
		}
		key, val, _ := strings.Cut(pair, "=")
		key, err := unescapeComponent(key)
		if err != nil {
			return Params{}, err
		}
		val, err = unescapeComponent(val)
		if err != nil {
			return Params{}, err
		}
		switch key {
		case "kind":
			p.Kind = val
		case "pred":
			p.Pred = val
		case "since":
			n, err := parseUint(val)
			if err != nil {
				return Params{}, fmt.Errorf("%w: since=%q", ErrBadQuery, val)
			}
			p.Since = n
			p.HasSince = true
		case "wait":
			d, err := parseWait(val)
			if err != nil {
				return Params{}, err
			}
			p.Wait = d
		default:
			return Params{}, fmt.Errorf("%w: unknown key %q", ErrBadQuery, key)
		}
	}
	return p, nil
}

// parseWait accepts a Go duration ("500ms", "5s") or a bare integer
// second count, clamped to maxWait.
func parseWait(val string) (time.Duration, error) {
	if val == "" {
		return 0, nil
	}
	var d time.Duration
	if n, err := parseUint(val); err == nil {
		if n > uint64(maxWait/time.Second) {
			return maxWait, nil // clamp before multiplying: no overflow
		}
		d = time.Duration(n) * time.Second
	} else {
		parsed, err := time.ParseDuration(val)
		if err != nil || parsed < 0 {
			return 0, fmt.Errorf("%w: wait=%q", ErrBadQuery, val)
		}
		d = parsed
	}
	if d > maxWait {
		d = maxWait
	}
	return d, nil
}

// parseUint is strconv.ParseUint(val, 10, 64) with overflow checking
// and no empty-string acceptance.
func parseUint(s string) (uint64, error) {
	if s == "" {
		return 0, ErrBadQuery
	}
	var n uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, ErrBadQuery
		}
		d := uint64(c - '0')
		if n > (1<<64-1-d)/10 {
			return 0, ErrBadQuery // overflow
		}
		n = n*10 + d
	}
	return n, nil
}

// unescapeComponent %-decodes one key or value, with '+' as space.
// The clean case (no '%', no '+') returns the input unchanged.
func unescapeComponent(s string) (string, error) {
	if !strings.ContainsAny(s, "%+") {
		return s, nil
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '+':
			out = append(out, ' ')
		case '%':
			if i+2 >= len(s) {
				return "", fmt.Errorf("%w: truncated %%-escape", ErrBadQuery)
			}
			hi, okh := unhex(s[i+1])
			lo, okl := unhex(s[i+2])
			if !okh || !okl {
				return "", fmt.Errorf("%w: bad %%-escape %q", ErrBadQuery, s[i:i+3])
			}
			out = append(out, hi<<4|lo)
			i += 2
		default:
			out = append(out, c)
		}
	}
	return string(out), nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// splitTarget cuts a request target into path and query string.
func splitTarget(target string) (path, qs string) {
	if i := strings.IndexByte(target, '?'); i >= 0 {
		return target[:i], target[i+1:]
	}
	return target, ""
}
