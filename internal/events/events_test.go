package events

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestTypeMetadata(t *testing.T) {
	// Table 1 spot checks.
	tests := []struct {
		typ       Type
		name      string
		cat       Category
		mandatory bool
	}{
		{CStart, "SDP_C_START", CatControl, true},
		{CParserSwitch, "SDP_C_PARSER_SWITCH", CatControl, true},
		{NetMulticast, "SDP_NET_MULTICAST", CatNetwork, true},
		{ServiceRequest, "SDP_SERVICE_REQUEST", CatService, true},
		{ReqLang, "SDP_REQ_LANG", CatRequest, true},
		{ResServURL, "SDP_RES_SERV_URL", CatResponse, true},
		{ReqScope, "SDP_REQ_SCOPE", CatRequest, false},
		{DeviceURLDesc, "SDP_DEVICE_URL_DESC", CatResponse, false},
		{JiniGroups, "SDP_JINI_GROUPS", CatRequest, false},
		{RegURL, "SDP_REG_URL", CatRegistration, false},
		{AdvLocation, "SDP_ADV_LOCATION", CatAdvertisement, false},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.name {
			t.Errorf("%d.String() = %q, want %q", tt.typ, got, tt.name)
		}
		if got := tt.typ.Category(); got != tt.cat {
			t.Errorf("%s.Category() = %v, want %v", tt.name, got, tt.cat)
		}
		if got := tt.typ.Mandatory(); got != tt.mandatory {
			t.Errorf("%s.Mandatory() = %v, want %v", tt.name, got, tt.mandatory)
		}
	}
}

func TestMandatorySetMatchesTable1(t *testing.T) {
	// The mandatory set Σm is exactly the union of the five Table 1
	// subsets; extension-set and SDP-specific events are excluded.
	var mandatory int
	for _, typ := range Types() {
		if !typ.Mandatory() {
			continue
		}
		mandatory++
		switch typ.Category() {
		case CatControl, CatNetwork, CatService, CatRequest, CatResponse:
		default:
			t.Errorf("%s is mandatory but in set %v", typ, typ.Category())
		}
	}
	// 4 control + 5 network + 6 service + 1 request + 5 response.
	if mandatory != 21 {
		t.Errorf("mandatory set has %d events, want 21", mandatory)
	}
}

func TestControlEventsNeverMandatoryOutsideControlSet(t *testing.T) {
	for _, typ := range Types() {
		if typ.Control() && typ.Category() != CatControl {
			t.Errorf("%s: Control() true but category %v", typ, typ.Category())
		}
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, typ := range Types() {
		got, ok := ByName(typ.String())
		if !ok || got != typ {
			t.Errorf("ByName(%q) = %v,%v", typ.String(), got, ok)
		}
	}
	if _, ok := ByName("SDP_NOSUCH"); ok {
		t.Error("ByName accepted an unknown name")
	}
}

func TestTypeNamesUnique(t *testing.T) {
	seen := make(map[string]Type)
	for _, typ := range Types() {
		name := typ.String()
		if prev, dup := seen[name]; dup {
			t.Errorf("name %q used by both %d and %d", name, prev, typ)
		}
		seen[name] = typ
	}
}

func TestInvalidType(t *testing.T) {
	bad := Type(9999)
	if bad.Valid() {
		t.Error("Type(9999) should be invalid")
	}
	if bad.String() != "SDP_UNKNOWN" {
		t.Errorf("String = %q", bad.String())
	}
	if bad.Mandatory() {
		t.Error("invalid type must not be mandatory")
	}
}

func TestStreamFraming(t *testing.T) {
	s := NewStream(E(ServiceRequest, ""), E(ServiceType, "service:clock"))
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(s) != 4 {
		t.Fatalf("len = %d, want 4", len(s))
	}
	if s[0].Type != CStart || s[len(s)-1].Type != CStop {
		t.Error("framing events missing")
	}
	body := s.Body()
	if len(body) != 2 || body[0].Type != ServiceRequest {
		t.Errorf("Body = %v", body)
	}
}

func TestStreamValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		s    Stream
		want error
	}{
		{"empty", Stream{}, ErrEmptyStream},
		{"no start", Stream{E(ServiceRequest, ""), E(CStop, "")}, ErrNoStart},
		{"no stop", Stream{E(CStart, ""), E(ServiceRequest, "")}, ErrNoStop},
		{"interior start", Stream{E(CStart, ""), E(CStart, ""), E(CStop, "")}, ErrInnerFraming},
		{"interior stop", Stream{E(CStart, ""), E(CStop, ""), E(CStop, "")}, ErrInnerFraming},
		{"invalid type", Stream{E(CStart, ""), E(Type(999), ""), E(CStop, "")}, ErrInvalidType},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.s.Validate(); !errors.Is(err, tt.want) {
				t.Errorf("Validate = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestStreamQueries(t *testing.T) {
	s := NewStream(
		E(ServiceType, "service:clock"),
		E(ResAttr, "a=1"),
		E(ResAttr, "b=2"),
	)
	if got := s.FirstData(ServiceType); got != "service:clock" {
		t.Errorf("FirstData = %q", got)
	}
	if got := len(s.All(ResAttr)); got != 2 {
		t.Errorf("All(ResAttr) = %d", got)
	}
	if !s.Has(ServiceType) || s.Has(JiniGroups) {
		t.Error("Has misreported")
	}
	if _, ok := s.First(ResServURL); ok {
		t.Error("First on missing type should report false")
	}
	name, value, ok := E(ResAttr, "key=val=x").Attr()
	if !ok || name != "key" || value != "val=x" {
		t.Errorf("Attr = %q %q %v", name, value, ok)
	}
}

func TestMandatoryOnlyDropsSpecificEvents(t *testing.T) {
	// Paper §2.4: SDP_REQ_VERSION, SDP_REQ_SCOPE, SDP_REQ_PREDICATE and
	// SDP_REQ_ID are specific to SLP and discarded by the UPnP composer.
	s := NewStream(
		E(NetMulticast, ""),
		E(ServiceRequest, ""),
		E(ReqVersion, "2"),
		E(ReqScope, "DEFAULT"),
		E(ReqPredicate, "(port=80)"),
		E(ReqID, "42"),
		E(ServiceType, "service:clock"),
	)
	got := s.MandatoryOnly()
	want := NewStream(
		E(NetMulticast, ""),
		E(ServiceRequest, ""),
		E(ServiceType, "service:clock"),
	)
	if got.String() != want.String() {
		t.Errorf("MandatoryOnly:\n got %s\nwant %s", got, want)
	}
}

func TestStreamCloneIndependent(t *testing.T) {
	s := NewStream(E(ServiceType, "x"))
	c := s.Clone()
	c[1] = E(ServiceType, "y")
	if s[1].Data != "x" {
		t.Error("Clone shares backing array")
	}
}

func TestStreamStringFormat(t *testing.T) {
	s := Stream{E(CStart, ""), E(ServiceType, "service:clock"), E(CStop, "")}
	want := "SDP_C_START SDP_SERVICE_TYPE(service:clock) SDP_C_STOP"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestFramingPropertyAnyBody(t *testing.T) {
	// NewStream must produce a valid stream for any body that itself
	// contains no framing/control-boundary events.
	f := func(picks []uint8, datas []string) bool {
		valid := Types()
		var body []Event
		for i, p := range picks {
			typ := valid[int(p)%len(valid)]
			if typ == CStart || typ == CStop {
				continue
			}
			data := ""
			if i < len(datas) {
				data = datas[i]
			}
			body = append(body, E(typ, data))
		}
		return NewStream(body...).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBusRoutesToAllButSource(t *testing.T) {
	b := NewBus()
	defer b.Close()

	var mu sync.Mutex
	got := make(map[string][]string)
	record := func(name string) Listener {
		return ListenerFunc(func(env Envelope) {
			mu.Lock()
			defer mu.Unlock()
			got[name] = append(got[name], env.Source)
		})
	}
	b.Subscribe("slp", record("slp"))
	b.Subscribe("upnp", record("upnp"))
	b.Subscribe("jini", record("jini"))

	b.Publish("slp", NewStream(E(ServiceRequest, "")))
	b.Close() // drains queues

	mu.Lock()
	defer mu.Unlock()
	if len(got["slp"]) != 0 {
		t.Errorf("source received its own stream: %v", got["slp"])
	}
	if len(got["upnp"]) != 1 || len(got["jini"]) != 1 {
		t.Errorf("peers = %v", got)
	}
}

func TestBusOrderingPerSubscriber(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	var seen []string
	b.Subscribe("sink", ListenerFunc(func(env Envelope) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, env.Stream.FirstData(ServiceType))
	}))
	const count = 100
	for i := 0; i < count; i++ {
		b.Publish("src", NewStream(E(ServiceType, strings.Repeat("x", i%7)+"#"+string(rune('a'+i%26)))))
	}
	b.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != count {
		t.Fatalf("delivered %d, want %d", len(seen), count)
	}
	for i := 1; i < count; i++ {
		// Re-derive the expected payload to confirm order.
		want := strings.Repeat("x", i%7) + "#" + string(rune('a'+i%26))
		if seen[i] != want {
			t.Fatalf("position %d = %q, want %q", i, seen[i], want)
		}
	}
}

func TestBusUnsubscribe(t *testing.T) {
	b := NewBus()
	defer b.Close()
	var mu sync.Mutex
	count := 0
	b.Subscribe("a", ListenerFunc(func(Envelope) {
		mu.Lock()
		count++
		mu.Unlock()
	}))
	b.Publish("x", NewStream())
	b.Unsubscribe("a")
	b.Publish("x", NewStream())

	mu.Lock()
	defer mu.Unlock()
	if count > 1 {
		t.Errorf("received %d after unsubscribe", count)
	}
	if names := b.Names(); len(names) != 0 {
		t.Errorf("Names = %v", names)
	}
}

func TestBusCloseIdempotentAndPublishAfterClose(t *testing.T) {
	b := NewBus()
	b.Subscribe("a", ListenerFunc(func(Envelope) {}))
	b.Close()
	b.Close()
	b.Publish("x", NewStream()) // must not panic
	b.Subscribe("late", ListenerFunc(func(Envelope) {}))
	if names := b.Names(); len(names) != 0 {
		t.Errorf("subscribe after close should be ignored, got %v", names)
	}
}

func TestBusConcurrentPublishers(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	total := 0
	b.Subscribe("sink", ListenerFunc(func(Envelope) {
		mu.Lock()
		total++
		mu.Unlock()
	}))
	var wg sync.WaitGroup
	const publishers, each = 8, 50
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Publish("src", NewStream(E(ServiceAlive, "s")))
			}
		}()
	}
	wg.Wait()
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if total != publishers*each {
		t.Errorf("delivered %d, want %d", total, publishers*each)
	}
}

func TestCategoryString(t *testing.T) {
	cats := map[Category]string{
		CatControl:       "SDP Control Events",
		CatNetwork:       "SDP Network Events",
		CatService:       "SDP Service Events",
		CatRequest:       "SDP Request Events",
		CatResponse:      "SDP Response Events",
		CatRegistration:  "Registration Events",
		CatDiscovery:     "Discovery Events",
		CatAdvertisement: "Advertisement Events",
		Category(99):     "Unknown Category",
	}
	for c, want := range cats {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}
