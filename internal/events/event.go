package events

import (
	"errors"
	"fmt"
	"strings"
)

// Event is the basic element of INDISS communication: "events are basic
// elements and consist of two parts: event type and data" (paper §2.3).
type Event struct {
	Type Type
	Data string
}

// E is shorthand for constructing an event.
func E(t Type, data string) Event { return Event{Type: t, Data: data} }

// String renders the event for traces.
func (e Event) String() string {
	if e.Data == "" {
		return e.Type.String()
	}
	return e.Type.String() + "(" + e.Data + ")"
}

// Attr splits a "name=value" payload, as carried by SDP_SERVICE_ATTR,
// SDP_RES_ATTR and SDP_REG_ATTR events.
func (e Event) Attr() (name, value string, ok bool) {
	return strings.Cut(e.Data, "=")
}

// Stream is the ordered sequence of events one native message translates
// to. "The event stream always starts with a SDP_C_START event and ends
// with a SDP_C_STOP event to specify the events belonging to a same
// message" (paper §2.4).
type Stream []Event

// Stream validation errors.
var (
	ErrEmptyStream  = errors.New("events: empty stream")
	ErrNoStart      = errors.New("events: stream does not start with SDP_C_START")
	ErrNoStop       = errors.New("events: stream does not end with SDP_C_STOP")
	ErrInnerFraming = errors.New("events: interior SDP_C_START/SDP_C_STOP")
	ErrInvalidType  = errors.New("events: undefined event type")
)

// NewStream frames body events into a message stream, adding SDP_C_START
// and SDP_C_STOP.
func NewStream(body ...Event) Stream {
	s := make(Stream, 0, len(body)+2)
	s = append(s, E(CStart, ""))
	s = append(s, body...)
	s = append(s, E(CStop, ""))
	return s
}

// Validate checks the framing invariant and that every event type is
// defined.
func (s Stream) Validate() error {
	if len(s) == 0 {
		return ErrEmptyStream
	}
	if s[0].Type != CStart {
		return fmt.Errorf("%w (got %s)", ErrNoStart, s[0].Type)
	}
	if s[len(s)-1].Type != CStop {
		return fmt.Errorf("%w (got %s)", ErrNoStop, s[len(s)-1].Type)
	}
	for i, e := range s {
		if !e.Type.Valid() {
			return fmt.Errorf("%w: %d at index %d", ErrInvalidType, uint16(e.Type), i)
		}
		if i > 0 && i < len(s)-1 && (e.Type == CStart || e.Type == CStop) {
			return fmt.Errorf("%w at index %d", ErrInnerFraming, i)
		}
	}
	return nil
}

// Body returns the events between the framing pair. It returns s unchanged
// if the stream is not framed.
func (s Stream) Body() Stream {
	if len(s) >= 2 && s[0].Type == CStart && s[len(s)-1].Type == CStop {
		return s[1 : len(s)-1]
	}
	return s
}

// First returns the first event of the given type.
func (s Stream) First(t Type) (Event, bool) {
	for _, e := range s {
		if e.Type == t {
			return e, true
		}
	}
	return Event{}, false
}

// FirstData returns the data of the first event of the given type, or "".
func (s Stream) FirstData(t Type) string {
	e, _ := s.First(t)
	return e.Data
}

// All returns every event of the given type, in order.
func (s Stream) All(t Type) []Event {
	var out []Event
	for _, e := range s {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// Has reports whether the stream contains an event of the given type.
func (s Stream) Has(t Type) bool {
	_, ok := s.First(t)
	return ok
}

// MandatoryOnly filters the stream down to Σm events, which is what a
// composer that knows no SDP-specific events effectively sees: "the
// behaviour of the latter is unchanged as they discard unknown events and
// consider only the mandatory events" (paper §2.3).
func (s Stream) MandatoryOnly() Stream {
	out := make(Stream, 0, len(s))
	for _, e := range s {
		if e.Type.Mandatory() {
			out = append(out, e)
		}
	}
	return out
}

// Filter returns the events for which keep returns true.
func (s Stream) Filter(keep func(Event) bool) Stream {
	out := make(Stream, 0, len(s))
	for _, e := range s {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Clone returns a deep copy of the stream.
func (s Stream) Clone() Stream {
	out := make(Stream, len(s))
	copy(out, s)
	return out
}

// String renders the stream compactly for traces and tests.
func (s Stream) String() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}
