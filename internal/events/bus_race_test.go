package events

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBusConcurrentChurn hammers the copy-on-write bus with concurrent
// publishers (plain and pooled), subscriber churn and Names reads — the
// interleavings `go test -race` must prove safe now that Publish takes no
// lock.
func TestBusConcurrentChurn(t *testing.T) {
	b := NewBus()
	defer b.Close()

	var delivered atomic.Int64
	b.Subscribe("sink", ListenerFunc(func(env Envelope) {
		delivered.Add(1)
		env.Release()
	}))

	stop := make(chan struct{})
	var churn sync.WaitGroup
	for i := 0; i < 3; i++ {
		churn.Add(1)
		go func(i int) {
			defer churn.Done()
			name := "churn-" + strconv.Itoa(i)
			for {
				select {
				case <-stop:
					return
				default:
				}
				b.Subscribe(name, ListenerFunc(func(env Envelope) {
					env.Release()
				}))
				_ = b.Names()
				b.Unsubscribe(name)
			}
		}(i)
	}

	var pubs sync.WaitGroup
	const publishers, each = 4, 200
	for p := 0; p < publishers; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			plain := NewStream(E(ServiceAlive, "plain"))
			for i := 0; i < each; i++ {
				b.Publish("src", plain)
				b.PublishPooled("src", NewPooledStream(
					E(NetType, "SLP"),
					E(ServiceAlive, "pooled"),
				))
			}
		}()
	}

	pubs.Wait()
	close(stop)
	churn.Wait()
	b.Close()

	// The persistent sink existed for every publish; with churners racing
	// it is the lower bound on deliveries.
	if got := delivered.Load(); got < publishers*each*2 {
		t.Errorf("sink saw %d envelopes, want at least %d", got, publishers*each*2)
	}
}

// TestBusCloseDuringPublish closes the bus while publishers are mid-storm:
// no publish may panic, deadlock, or deliver after the workers drained.
func TestBusCloseDuringPublish(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		b := NewBus()
		b.Subscribe("sink", ListenerFunc(func(env Envelope) {
			env.Release()
		}))
		var pubs sync.WaitGroup
		for p := 0; p < 4; p++ {
			pubs.Add(1)
			go func() {
				defer pubs.Done()
				for i := 0; i < 100; i++ {
					b.PublishPooled("src", NewPooledStream(E(ServiceAlive, "x")))
				}
			}()
		}
		b.Close() // races the publishers on purpose
		pubs.Wait()
	}
}

// TestBusPooledStreamReuseSafety checks that a pooled stream's contents
// are intact when a slow subscriber finally reads them, even though other
// subscribers released their shares long ago and publishers keep recycling
// streams through the pool.
func TestBusPooledStreamReuseSafety(t *testing.T) {
	b := NewBus()
	defer b.Close()

	type seen struct {
		sync.Mutex
		bad int
	}
	var s seen
	check := func(env Envelope) {
		data := env.Stream.FirstData(ServiceType)
		if env.Stream.FirstData(ReqID) != data {
			s.Lock()
			s.bad++
			s.Unlock()
		}
		env.Release()
	}
	// fast releases immediately; slow re-reads the stream after a bounce
	// through the scheduler, so a premature recycle would be visible as a
	// ReqID/ServiceType mismatch.
	b.Subscribe("fast", ListenerFunc(check))
	b.Subscribe("slow", ListenerFunc(func(env Envelope) {
		ch := make(chan struct{})
		go func() { close(ch) }()
		<-ch
		check(env)
	}))

	for i := 0; i < 2000; i++ {
		tag := strconv.Itoa(i)
		b.PublishPooled("src", NewPooledStream(
			E(ServiceType, tag),
			E(ReqID, tag),
		))
	}
	b.Close()

	s.Lock()
	defer s.Unlock()
	if s.bad != 0 {
		t.Errorf("%d streams were corrupted by premature pool reuse", s.bad)
	}
}
