// Package events defines the semantic event vocabulary at the heart of
// INDISS.
//
// Parsers translate native SDP messages into streams of these events;
// composers translate event streams back into native messages of another
// SDP (paper §2.2). The two sides never exchange protocol syntax — only
// events — which is what makes the translation N-to-N instead of pairwise.
//
// The vocabulary has three tiers, following paper §2.3 and Table 1:
//
//   - The mandatory set Σm — the greatest common denominator of all SDPs.
//     Every parser must emit them, every composer must understand them.
//   - SDP-specific events (SLP, UPnP, Jini, DNS-SD) — "events added to the
//     mandatory ones enable the richest SDPs to interact using their
//     advanced features without being misunderstood by the poorest",
//     because unknown events are simply discarded.
//   - Open extension sets (Registration, Discovery, Advertisement) that
//     future SDPs enrich without cascading changes.
package events

// Type identifies an event. The wire-facing names (String) match the
// paper's SDP_* vocabulary.
type Type uint16

// Category groups event types into the sets of paper §2.3.
type Category uint8

// Event categories. Mandatory events live in the first five; the last
// three are the paper's open extension sets.
const (
	CatControl Category = iota + 1
	CatNetwork
	CatService
	CatRequest
	CatResponse
	CatRegistration
	CatDiscovery
	CatAdvertisement
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatControl:
		return "SDP Control Events"
	case CatNetwork:
		return "SDP Network Events"
	case CatService:
		return "SDP Service Events"
	case CatRequest:
		return "SDP Request Events"
	case CatResponse:
		return "SDP Response Events"
	case CatRegistration:
		return "Registration Events"
	case CatDiscovery:
		return "Discovery Events"
	case CatAdvertisement:
		return "Advertisement Events"
	default:
		return "Unknown Category"
	}
}

// Mandatory event set Σm (paper Table 1).
const (
	// Control events notify listeners of component-internal state; they
	// coordinate parsers and composers inside a unit and never appear in
	// composed native messages.
	CStart        Type = iota + 1 // SDP_C_START: first event of a message's stream
	CStop                         // SDP_C_STOP: last event of a message's stream
	CParserSwitch                 // SDP_C_PARSER_SWITCH: unit must swap the active parser
	CSocketSwitch                 // SDP_C_SOCKET_SWITCH: unit must swap the active transport

	// Network events carry transport properties of the parsed message.
	NetUnicast    // SDP_NET_UNICAST: the message arrived unicast
	NetMulticast  // SDP_NET_MULTICAST: the message arrived multicast
	NetSourceAddr // SDP_NET_SOURCE_ADDR: "ip:port" of the sender
	NetDestAddr   // SDP_NET_DEST_ADDR: "ip:port" the message was sent to
	NetType       // SDP_NET_TYPE: name of the SDP the message belongs to

	// Service events describe the discovery functions common to all SDPs.
	ServiceRequest  // SDP_SERVICE_REQUEST: a service search was issued
	ServiceResponse // SDP_SERVICE_RESPONSE: a search answer
	ServiceAlive    // SDP_SERVICE_ALIVE: advertisement of an available service
	ServiceByeBye   // SDP_SERVICE_BYEBYE: advertisement of a departing service
	ServiceType     // SDP_SERVICE_TYPE: canonical type of the service
	ServiceAttr     // SDP_SERVICE_ATTR: one "name=value" service attribute

	// Request events refine searches.
	ReqLang // SDP_REQ_LANG: requested language tag

	// Response events express common SDP answers.
	ResOK      // SDP_RES_OK: positive acknowledgement
	ResErr     // SDP_RES_ERR: negative acknowledgement / error code
	ResTTL     // SDP_RES_TTL: lifetime of the answer in seconds
	ResServURL // SDP_RES_SERV_URL: URL of the discovered service
	ResAttr    // SDP_RES_ATTR: one "name=value" attribute of the answer

	// --- SDP-specific events (not mandatory) ---

	// SLP-specific (paper §2.4 discards these in the UPnP composer).
	ReqVersion   // SDP_REQ_VERSION: SLP protocol version
	ReqScope     // SDP_REQ_SCOPE: SLP scope list
	ReqPredicate // SDP_REQ_PREDICATE: SLP LDAP search filter
	ReqID        // SDP_REQ_ID: SLP transaction id (XID)
	SLPSPI       // SDP_SLP_SPI: SLP security parameter index

	// UPnP-specific.
	DeviceURLDesc // SDP_DEVICE_URL_DESC: URL of the device description document
	DeviceUSN     // SDP_UPNP_USN: unique service name
	DeviceServer  // SDP_UPNP_SERVER: server product tokens
	SearchMX      // SDP_UPNP_MX: maximum response delay of an M-SEARCH
	MaxAge        // SDP_UPNP_MAX_AGE: advertisement cache lifetime

	// Jini-specific.
	JiniGroups    // SDP_JINI_GROUPS: lookup groups of interest
	JiniServiceID // SDP_JINI_SERVICE_ID: 128-bit Jini service id
	JiniLocator   // SDP_JINI_LOCATOR: unicast lookup locator "host:port"

	// DNS-SD-specific — added with the DNS-SD unit exactly as §2.3
	// prescribes: a richer SDP enriches the vocabulary without being
	// misunderstood by the poorer ones, which discard unknown events.
	DNSSDInstance // SDP_DNSSD_INSTANCE: service instance name
	DNSSDHost     // SDP_DNSSD_HOST: mDNS target host name

	// --- Open extension sets (paper §2.3) ---

	// Registration events enrich both requests and responses.
	RegURL      // SDP_REG_URL: URL being registered
	RegLifetime // SDP_REG_LIFETIME: registration lifetime in seconds
	RegScope    // SDP_REG_SCOPE: registration scope
	RegAttr     // SDP_REG_ATTR: one registered "name=value" attribute

	// Discovery events enrich both requests and responses.
	DiscRepository // SDP_DISC_REPOSITORY: a repository/DA/lookup-service location
	DiscScope      // SDP_DISC_SCOPE: scope/group being discovered

	// Advertisement events enrich only responses (one-way messages).
	AdvLocation // SDP_ADV_LOCATION: advertised service location
	AdvMaxAge   // SDP_ADV_MAX_AGE: advertisement validity in seconds

	// typeSentinel bounds the valid Type range; keep it last.
	typeSentinel
)

// typeInfo carries per-type metadata, indexed by Type.
type typeInfo struct {
	name      string
	category  Category
	mandatory bool
}

// typeTable is the registry of every defined event type.
var typeTable = map[Type]typeInfo{
	CStart:        {"SDP_C_START", CatControl, true},
	CStop:         {"SDP_C_STOP", CatControl, true},
	CParserSwitch: {"SDP_C_PARSER_SWITCH", CatControl, true},
	CSocketSwitch: {"SDP_C_SOCKET_SWITCH", CatControl, true},

	NetUnicast:    {"SDP_NET_UNICAST", CatNetwork, true},
	NetMulticast:  {"SDP_NET_MULTICAST", CatNetwork, true},
	NetSourceAddr: {"SDP_NET_SOURCE_ADDR", CatNetwork, true},
	NetDestAddr:   {"SDP_NET_DEST_ADDR", CatNetwork, true},
	NetType:       {"SDP_NET_TYPE", CatNetwork, true},

	ServiceRequest:  {"SDP_SERVICE_REQUEST", CatService, true},
	ServiceResponse: {"SDP_SERVICE_RESPONSE", CatService, true},
	ServiceAlive:    {"SDP_SERVICE_ALIVE", CatService, true},
	ServiceByeBye:   {"SDP_SERVICE_BYEBYE", CatService, true},
	ServiceType:     {"SDP_SERVICE_TYPE", CatService, true},
	ServiceAttr:     {"SDP_SERVICE_ATTR", CatService, true},

	ReqLang: {"SDP_REQ_LANG", CatRequest, true},

	ResOK:      {"SDP_RES_OK", CatResponse, true},
	ResErr:     {"SDP_RES_ERR", CatResponse, true},
	ResTTL:     {"SDP_RES_TTL", CatResponse, true},
	ResServURL: {"SDP_RES_SERV_URL", CatResponse, true},
	ResAttr:    {"SDP_RES_ATTR", CatResponse, true},

	ReqVersion:   {"SDP_REQ_VERSION", CatRequest, false},
	ReqScope:     {"SDP_REQ_SCOPE", CatRequest, false},
	ReqPredicate: {"SDP_REQ_PREDICATE", CatRequest, false},
	ReqID:        {"SDP_REQ_ID", CatRequest, false},
	SLPSPI:       {"SDP_SLP_SPI", CatRequest, false},

	DeviceURLDesc: {"SDP_DEVICE_URL_DESC", CatResponse, false},
	DeviceUSN:     {"SDP_UPNP_USN", CatResponse, false},
	DeviceServer:  {"SDP_UPNP_SERVER", CatResponse, false},
	SearchMX:      {"SDP_UPNP_MX", CatRequest, false},
	MaxAge:        {"SDP_UPNP_MAX_AGE", CatResponse, false},

	JiniGroups:    {"SDP_JINI_GROUPS", CatRequest, false},
	JiniServiceID: {"SDP_JINI_SERVICE_ID", CatResponse, false},
	JiniLocator:   {"SDP_JINI_LOCATOR", CatResponse, false},

	DNSSDInstance: {"SDP_DNSSD_INSTANCE", CatResponse, false},
	DNSSDHost:     {"SDP_DNSSD_HOST", CatResponse, false},

	RegURL:      {"SDP_REG_URL", CatRegistration, false},
	RegLifetime: {"SDP_REG_LIFETIME", CatRegistration, false},
	RegScope:    {"SDP_REG_SCOPE", CatRegistration, false},
	RegAttr:     {"SDP_REG_ATTR", CatRegistration, false},

	DiscRepository: {"SDP_DISC_REPOSITORY", CatDiscovery, false},
	DiscScope:      {"SDP_DISC_SCOPE", CatDiscovery, false},

	AdvLocation: {"SDP_ADV_LOCATION", CatAdvertisement, false},
	AdvMaxAge:   {"SDP_ADV_MAX_AGE", CatAdvertisement, false},
}

// String returns the paper's SDP_* name for the type.
func (t Type) String() string {
	if info, ok := typeTable[t]; ok {
		return info.name
	}
	return "SDP_UNKNOWN"
}

// Category returns the event set the type belongs to.
func (t Type) Category() Category {
	return typeTable[t].category
}

// Mandatory reports whether the type belongs to Σm, the set every parser
// must emit and every composer must understand (paper Table 1).
func (t Type) Mandatory() bool {
	return typeTable[t].mandatory
}

// Control reports whether the type is a control event. Control events
// coordinate INDISS-internal components and must never leak into composed
// native messages.
func (t Type) Control() bool {
	return typeTable[t].category == CatControl
}

// Valid reports whether the type is a defined event type.
func (t Type) Valid() bool {
	_, ok := typeTable[t]
	return ok
}

// Types returns every defined event type in declaration order.
func Types() []Type {
	out := make([]Type, 0, len(typeTable))
	for t := Type(1); t < typeSentinel; t++ {
		if t.Valid() {
			out = append(out, t)
		}
	}
	return out
}

// ByName resolves a paper-style SDP_* name to its Type. It reports false
// for unknown names.
func ByName(name string) (Type, bool) {
	for t, info := range typeTable {
		if info.name == name {
			return t, true
		}
	}
	return 0, false
}
