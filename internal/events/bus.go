package events

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Envelope is a stream in transit on a Bus, tagged with its origin so
// listeners can avoid echoing their own output back to themselves.
type Envelope struct {
	// Source names the publishing component (a unit name, "monitor", …).
	Source string
	// Stream is the framed event sequence of one native message.
	Stream Stream

	// ps is the pooled backing of Stream when the publisher handed
	// ownership to the bus via PublishPooled; nil for plain publishes.
	ps *PooledStream
}

// Release hands the envelope's share of a pooled stream back to the pool.
// Every subscriber of a PublishPooled stream must call Release exactly
// once when done with the stream (see PERF.md for the ownership rules);
// for plain Publish envelopes Release is a no-op, so listeners may call it
// unconditionally. After Release the stream and any sub-slices of it must
// not be touched.
func (env *Envelope) Release() {
	ps := env.ps
	env.ps = nil
	if ps != nil {
		ps.release()
	}
}

// Listener consumes envelopes published on a Bus.
type Listener interface {
	// OnEvents is called once per published stream, in publication
	// order. Implementations own the envelope.
	OnEvents(Envelope)
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(Envelope)

// OnEvents implements Listener.
func (f ListenerFunc) OnEvents(env Envelope) { f(env) }

// busQueueCap bounds each subscriber's backlog. A slow listener blocks
// publishers rather than dropping events: event streams are messages, and
// silently losing half a message would corrupt the translation process.
const busQueueCap = 64

// subList is the immutable subscriber snapshot Publish iterates. Mutations
// (Subscribe/Unsubscribe/Close) build a fresh list and swap it in
// atomically, so the publish fast path is lock-free and allocation-free.
type subList struct {
	subs []*subscriber
}

// Bus routes event streams between INDISS components. Each subscriber is
// served by its own goroutine in publication order, mirroring the
// decoupled event-based architectural style of paper §3: "components
// operate without being aware of the existence of other components".
//
// The subscriber list is copy-on-write: Publish loads it with one atomic
// pointer read and never takes a lock, so concurrent publishers scale with
// cores instead of serializing on a bus mutex.
type Bus struct {
	list atomic.Pointer[subList]

	mu     sync.Mutex // serializes Subscribe/Unsubscribe/Close
	closed bool
	wg     sync.WaitGroup
}

type subscriber struct {
	name     string
	listener Listener

	// queue carries envelopes to the worker; done signals shutdown.
	// Blocked senders select on both, so a subscriber can stop while a
	// publisher waits on a full queue without closing the channel under
	// the send (the race the old per-subscriber send mutex existed for).
	// stopped mirrors done as a cheap load for the send fast path;
	// inflight counts senders inside send so the worker's shutdown drain
	// can wait out stragglers instead of stranding an accepted envelope.
	queue    chan Envelope
	done     chan struct{}
	stopped  atomic.Bool
	inflight atomic.Int32
}

// stopMark is the in-band shutdown sentinel. Delivering shutdown through
// the queue itself keeps the worker's receive a plain channel operation —
// the cheapest send/wake path — instead of a select over queue+done.
var stopMark = &PooledStream{}

// stop signals shutdown. Callers (Unsubscribe, Close) serialize on the
// bus mutex, so stop runs at most once per subscriber. The sentinel is
// sent from a goroutine because the queue may be full; the worker is
// guaranteed to drain it since it only exits on the sentinel.
func (sub *subscriber) stop() {
	sub.stopped.Store(true)
	close(sub.done) // aborts senders blocked on a full queue
	go func() { sub.queue <- Envelope{ps: stopMark} }()
}

// send enqueues env unless the subscriber has stopped, reporting whether
// the envelope was handed over — and an accepted (true) envelope is
// guaranteed to reach the listener: the worker's shutdown drain waits for
// in-flight senders. send may block for backpressure; the worker keeps
// draining, so the block is bounded by listener progress.
func (sub *subscriber) send(env Envelope) bool {
	// The increment must precede the stopped check: the worker's drain
	// only exits when inflight is zero, so any sender it missed will
	// observe stopped (both are sequentially consistent atomics) and
	// drop instead of enqueueing into a dead queue.
	sub.inflight.Add(1)
	defer sub.inflight.Add(-1)
	// Drop-after-stop must win over a free queue slot, so a Publish
	// sequenced after Unsubscribe/Close is deterministically a no-op.
	if sub.stopped.Load() {
		return false
	}
	// Fast path: non-blocking enqueue into the preallocated ring.
	select {
	case sub.queue <- env:
		return true
	default:
	}
	// Queue full: block for backpressure, but abort on shutdown.
	select {
	case sub.queue <- env:
		return true
	case <-sub.done:
		return false
	}
}

// run delivers queued envelopes in order until the stop sentinel arrives.
// Queue FIFO order means every envelope accepted before stop is delivered
// first; the final drain then waits out senders that raced the stop, so
// every send that reported acceptance is delivered (no stranded envelopes,
// no leaked pooled-stream shares).
func (sub *subscriber) run() {
	for {
		env := <-sub.queue
		if env.ps == stopMark {
			for {
				select {
				case env := <-sub.queue:
					sub.listener.OnEvents(env)
				default:
					if sub.inflight.Load() == 0 && len(sub.queue) == 0 {
						return
					}
					// A straggler is mid-send (shutdown only, and its
					// send is non-blocking or done-aborted, so this
					// spin is brief).
					runtime.Gosched()
				}
			}
		}
		sub.listener.OnEvents(env)
	}
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	b := &Bus{}
	b.list.Store(&subList{})
	return b
}

// Subscribe registers a listener under a diagnostic name. Envelopes whose
// Source equals name are not delivered to the subscriber (no self-echo).
func (b *Bus) Subscribe(name string, l Listener) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	sub := &subscriber{
		name:     name,
		listener: l,
		queue:    make(chan Envelope, busQueueCap),
		done:     make(chan struct{}),
	}
	old := b.list.Load().subs
	next := make([]*subscriber, len(old)+1)
	copy(next, old)
	next[len(old)] = sub
	b.list.Store(&subList{subs: next})
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		sub.run()
	}()
}

// Unsubscribe removes the named listener. Envelopes already queued are
// drained by the worker before it exits.
func (b *Bus) Unsubscribe(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	old := b.list.Load().subs
	for i, sub := range old {
		if sub.name == name {
			next := make([]*subscriber, 0, len(old)-1)
			next = append(next, old[:i]...)
			next = append(next, old[i+1:]...)
			b.list.Store(&subList{subs: next})
			sub.stop()
			return
		}
	}
}

// Publish delivers the stream to every subscriber except the source
// itself. Publish blocks if a subscriber's queue is full, providing
// backpressure instead of loss. The fast path performs no locking and no
// allocation: the subscriber list is an atomic snapshot and the envelope
// is passed by value into each subscriber's preallocated queue.
func (b *Bus) Publish(source string, s Stream) {
	list := b.list.Load()
	if list == nil {
		return // closed
	}
	env := Envelope{Source: source, Stream: s}
	for _, sub := range list.subs {
		if sub.name == source {
			continue
		}
		sub.send(env)
	}
}

// PublishPooled is Publish for a stream acquired from the stream pool: the
// bus takes ownership, reference-counts the fan-out, and the stream's
// storage returns to the pool once every receiver has called
// Envelope.Release. The publisher must not touch ps after the call.
func (b *Bus) PublishPooled(source string, ps *PooledStream) {
	list := b.list.Load()
	if list == nil {
		ps.Free()
		return // closed
	}
	receivers := 0
	for _, sub := range list.subs {
		if sub.name != source {
			receivers++
		}
	}
	if receivers == 0 {
		ps.Free()
		return
	}
	ps.refs.Store(int32(receivers))
	env := Envelope{Source: source, Stream: ps.S, ps: ps}
	for _, sub := range list.subs {
		if sub.name == source {
			continue
		}
		if !sub.send(env) {
			// The receiver is shutting down and will never see the
			// envelope; drop its share of the refcount on its behalf.
			ps.release()
		}
	}
}

// Close stops the bus: all subscriber queues are drained and their workers
// awaited. Publishing after Close is a no-op.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	list := b.list.Swap(nil)
	b.mu.Unlock()

	if list != nil {
		for _, sub := range list.subs {
			sub.stop()
		}
	}
	b.wg.Wait()
}

// Names returns the current subscriber names, for diagnostics.
func (b *Bus) Names() []string {
	list := b.list.Load()
	if list == nil {
		return nil
	}
	out := make([]string, len(list.subs))
	for i, sub := range list.subs {
		out[i] = sub.name
	}
	return out
}
