package events

import (
	"sync"
)

// Envelope is a stream in transit on a Bus, tagged with its origin so
// listeners can avoid echoing their own output back to themselves.
type Envelope struct {
	// Source names the publishing component (a unit name, "monitor", …).
	Source string
	// Stream is the framed event sequence of one native message.
	Stream Stream
}

// Listener consumes envelopes published on a Bus.
type Listener interface {
	// OnEvents is called once per published stream, in publication
	// order. Implementations own the envelope.
	OnEvents(Envelope)
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(Envelope)

// OnEvents implements Listener.
func (f ListenerFunc) OnEvents(env Envelope) { f(env) }

// busQueueCap bounds each subscriber's backlog. A slow listener blocks
// publishers rather than dropping events: event streams are messages, and
// silently losing half a message would corrupt the translation process.
const busQueueCap = 64

// Bus routes event streams between INDISS components. Each subscriber is
// served by its own goroutine in publication order, mirroring the
// decoupled event-based architectural style of paper §3: "components
// operate without being aware of the existence of other components".
type Bus struct {
	mu     sync.Mutex
	subs   []*subscriber
	closed bool
	wg     sync.WaitGroup
}

type subscriber struct {
	name     string
	listener Listener

	// mu serializes senders against close: a sender holds mu while
	// enqueueing, so stop never closes the queue under a blocked send.
	mu     sync.Mutex
	closed bool
	queue  chan Envelope
}

// send enqueues env unless the subscriber has stopped. It may block for
// backpressure; the worker goroutine keeps draining, so the block is
// bounded by listener progress, not by other locks.
func (sub *subscriber) send(env Envelope) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	sub.queue <- env
}

// stop closes the queue exactly once, after which send is a no-op.
func (sub *subscriber) stop() {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	close(sub.queue)
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{}
}

// Subscribe registers a listener under a diagnostic name. Envelopes whose
// Source equals name are not delivered to the subscriber (no self-echo).
func (b *Bus) Subscribe(name string, l Listener) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	sub := &subscriber{
		name:     name,
		listener: l,
		queue:    make(chan Envelope, busQueueCap),
	}
	b.subs = append(b.subs, sub)
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for env := range sub.queue {
			sub.listener.OnEvents(env)
		}
	}()
}

// Unsubscribe removes the named listener. Its queue is drained by the
// worker before the worker exits.
func (b *Bus) Unsubscribe(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, sub := range b.subs {
		if sub.name == name {
			sub.stop()
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return
		}
	}
}

// Publish delivers the stream to every subscriber except the source
// itself. Publish blocks if a subscriber's queue is full, providing
// backpressure instead of loss.
func (b *Bus) Publish(source string, s Stream) {
	b.mu.Lock()
	subs := make([]*subscriber, 0, len(b.subs))
	if !b.closed {
		subs = append(subs, b.subs...)
	}
	b.mu.Unlock()

	env := Envelope{Source: source, Stream: s}
	for _, sub := range subs {
		if sub.name == source {
			continue
		}
		sub.send(env)
	}
}

// Close stops the bus: all subscriber queues are closed and their workers
// awaited. Publishing after Close is a no-op.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	subs := b.subs
	b.subs = nil
	b.mu.Unlock()

	for _, sub := range subs {
		sub.stop()
	}
	b.wg.Wait()
}

// Names returns the current subscriber names, for diagnostics.
func (b *Bus) Names() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.subs))
	for i, sub := range b.subs {
		out[i] = sub.name
	}
	return out
}
