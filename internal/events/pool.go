package events

import (
	"sync"
	"sync/atomic"
)

// pooledStreamCap is the initial event capacity of pooled streams. A
// translated discovery message is typically 8–15 events (framing + network
// + service + a handful of attributes), so 32 absorbs attribute-rich
// streams without regrowth.
const pooledStreamCap = 32

// PooledStream is a stream whose backing storage is recycled through a
// sync.Pool, making the per-message build→publish→compose cycle
// allocation-free in steady state.
//
// Ownership protocol (see PERF.md):
//
//  1. AcquireStream hands the caller an empty stream; the caller appends
//     events to S (reassigning S is fine — growth is retained on release).
//  2. Bus.PublishPooled transfers ownership to the bus, which
//     reference-counts the fan-out.
//  3. Every receiver calls Envelope.Release exactly once when done; the
//     last release returns the storage to the pool.
//  4. A stream that was acquired but never published is returned with
//     Free.
//
// After release, neither S nor any sub-slice of it may be used: the
// backing array will be handed to a future AcquireStream caller. Event
// data strings remain valid — only the []Event storage is recycled.
type PooledStream struct {
	// S is the stream under construction / in transit.
	S Stream

	refs atomic.Int32
}

var streamPool = sync.Pool{
	New: func() any {
		return &PooledStream{S: make(Stream, 0, pooledStreamCap)}
	},
}

// AcquireStream returns an empty pooled stream ready to append events to.
func AcquireStream() *PooledStream {
	return streamPool.Get().(*PooledStream)
}

// Free returns a never-published stream's storage to the pool. It must not
// be called after Bus.PublishPooled — the bus owns the stream from then
// on.
func (ps *PooledStream) Free() {
	ps.S = ps.S[:0]
	streamPool.Put(ps)
}

// release drops one receiver's share; the last share frees the storage.
// The strict == 0 means a miscounted extra release leaks the stream to the
// GC instead of double-inserting it into the pool.
func (ps *PooledStream) release() {
	if ps.refs.Add(-1) == 0 {
		ps.Free()
	}
}

// NewPooledStream frames body events into a pooled message stream, adding
// SDP_C_START and SDP_C_STOP — the pooled counterpart of NewStream.
func NewPooledStream(body ...Event) *PooledStream {
	ps := AcquireStream()
	ps.S = append(ps.S, E(CStart, ""))
	ps.S = append(ps.S, body...)
	ps.S = append(ps.S, E(CStop, ""))
	return ps
}
