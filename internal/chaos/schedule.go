package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"indiss/internal/simnet"
)

// The text schedule language: one fault per line, executed at its offset
// from scenario start.
//
//	# rolling partition across a campus
//	at 100ms partition seg1 seg2
//	at 400ms heal seg1 seg2
//	at 500ms down gw2
//	at 900ms up gw2
//	at 1s link seg2 seg3 latency=5ms bandwidth=1000000 loss=0.25
//	at 2s move client1 seg3
//
// Verbs: partition/heal take two segment names, down/up take a host
// name, link takes two segment names plus latency=/bandwidth=/loss=
// options (omitted options are the zero profile), move takes a host
// name and its destination segment (a roam/handover). Blank lines and
// #-comments are ignored. ParseSchedule and FormatSchedule round-trip.

// Op is one parsed schedule line.
type Op struct {
	// At is the fault's offset from scenario start.
	At time.Duration
	// Verb is one of "partition", "heal", "down", "up", "link", "move".
	Verb string
	// A and B name the fault's targets: two segments (partition, heal,
	// link), a host in A with B empty (down, up), or a host in A and a
	// segment in B (move).
	A, B string
	// Link is the new link profile (Verb "link" only).
	Link simnet.Link
}

// maxScheduleLen bounds a schedule's source text; anything larger is
// hostile input, not a test scenario.
const maxScheduleLen = 1 << 20

// ParseSchedule parses the text schedule language.
func ParseSchedule(src string) ([]Op, error) {
	if len(src) > maxScheduleLen {
		return nil, fmt.Errorf("chaos: schedule exceeds %d bytes", maxScheduleLen)
	}
	var ops []Op
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("chaos: line %d: %w", lineNo+1, err)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func parseLine(line string) (Op, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "at" {
		return Op{}, fmt.Errorf("want %q, got %q", "at <offset> <verb> ...", line)
	}
	at, err := time.ParseDuration(fields[1])
	if err != nil {
		return Op{}, fmt.Errorf("offset %q: %v", fields[1], err)
	}
	if at < 0 {
		return Op{}, fmt.Errorf("offset %q is negative", fields[1])
	}
	op := Op{At: at, Verb: fields[2]}
	args := fields[3:]
	switch op.Verb {
	case "partition", "heal":
		if len(args) != 2 {
			return Op{}, fmt.Errorf("%s wants two segments, got %d args", op.Verb, len(args))
		}
		op.A, op.B = args[0], args[1]
	case "down", "up":
		if len(args) != 1 {
			return Op{}, fmt.Errorf("%s wants one host, got %d args", op.Verb, len(args))
		}
		op.A = args[0]
	case "move":
		if len(args) != 2 {
			return Op{}, fmt.Errorf("move wants a host and a segment, got %d args", len(args))
		}
		op.A, op.B = args[0], args[1]
	case "link":
		if len(args) < 2 {
			return Op{}, fmt.Errorf("link wants two segments, got %d args", len(args))
		}
		op.A, op.B = args[0], args[1]
		for _, kv := range args[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Op{}, fmt.Errorf("link option %q: want key=value", kv)
			}
			switch key {
			case "latency":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return Op{}, fmt.Errorf("latency %q: %v", val, err)
				}
				op.Link.Latency = d
			case "bandwidth":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 0 {
					return Op{}, fmt.Errorf("bandwidth %q: %v", val, err)
				}
				op.Link.BandwidthBps = n
			case "loss":
				f, err := strconv.ParseFloat(val, 64)
				// The inverted bound also rejects NaN, and the sign
				// check rejects -0 (which would not round-trip). 1 is
				// legal: a total-blackhole link.
				if err != nil || !(f >= 0) || f > 1 || strings.HasPrefix(val, "-") {
					return Op{}, fmt.Errorf("loss %q: want a float in [0,1]", val)
				}
				op.Link.LossRate = f
			default:
				return Op{}, fmt.Errorf("unknown link option %q", key)
			}
		}
	default:
		return Op{}, fmt.Errorf("unknown verb %q", op.Verb)
	}
	if strings.HasPrefix(op.A, "#") || strings.HasPrefix(op.B, "#") {
		return Op{}, fmt.Errorf("target may not start with %q", "#")
	}
	return op, nil
}

// FormatSchedule renders ops in the canonical text form; the result
// parses back to the same ops.
func FormatSchedule(ops []Op) string {
	var b strings.Builder
	for _, op := range ops {
		fmt.Fprintf(&b, "at %s %s %s", op.At, op.Verb, op.A)
		if op.B != "" {
			b.WriteByte(' ')
			b.WriteString(op.B)
		}
		if op.Verb == "link" {
			if op.Link.Latency != 0 {
				fmt.Fprintf(&b, " latency=%s", op.Link.Latency)
			}
			if op.Link.BandwidthBps != 0 {
				fmt.Fprintf(&b, " bandwidth=%d", op.Link.BandwidthBps)
			}
			if op.Link.LossRate != 0 {
				fmt.Fprintf(&b, " loss=%s", strconv.FormatFloat(op.Link.LossRate, 'g', -1, 64))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Bind turns parsed ops into a runnable Scenario against a live
// simulated network. Target names are validated at execution time (a
// host may legitimately be added after parse), so binding never fails;
// a bad name surfaces as the step's error from Run. Bind is
// BindBackend over the simnet executor; hand BindBackend a *TCBackend
// to run the same ops against real containers instead.
func Bind(n *simnet.Network, ops []Op) *Scenario {
	return BindBackend(NetBackend{Net: n}, ops)
}
