package chaos

import (
	"fmt"

	"indiss/internal/simnet"
)

// Backend applies the schedule DSL's fault verbs to one fabric. Two
// implementations exist: NetBackend drives the simulated network
// (simnet link mutation, partitions, host crashes), and TCBackend
// (tcexec.go) drives real gateway containers through tc/netem and ip
// link — so one schedule file runs unmodified against either fabric.
type Backend interface {
	// Partition cuts connectivity between segments a and b.
	Partition(a, b string) error
	// Heal restores connectivity between segments a and b.
	Heal(a, b string) error
	// HostDown crashes (or isolates) the named host.
	HostDown(host string) error
	// HostUp revives the named host.
	HostUp(host string) error
	// SetLink mutates the a↔b link's latency/bandwidth/loss profile.
	SetLink(a, b string, l simnet.Link) error
	// Move roams a host onto another segment.
	Move(host, seg string) error
}

// NetBackend drives the schedule verbs against a live simnet fabric —
// the executor every chaos soak used before the containerized rig
// existed, now behind the same interface the tc executor satisfies.
type NetBackend struct {
	Net *simnet.Network
}

var _ Backend = NetBackend{}

func (b NetBackend) Partition(a, c string) error              { return b.Net.Partition(a, c) }
func (b NetBackend) Heal(a, c string) error                   { return b.Net.Heal(a, c) }
func (b NetBackend) HostDown(host string) error               { return b.Net.SetHostDown(host, true) }
func (b NetBackend) HostUp(host string) error                 { return b.Net.SetHostDown(host, false) }
func (b NetBackend) SetLink(a, c string, l simnet.Link) error { return b.Net.SetLink(a, c, l) }
func (b NetBackend) Move(host, seg string) error              { return b.Net.MoveHost(host, seg) }

// BindBackend turns parsed ops into a runnable Scenario against any
// fault backend. Target names are validated at execution time, so
// binding never fails; a bad name surfaces as the step's error from
// Run. This is the join point of the schedule DSL's portability
// contract: ParseSchedule → BindBackend(NetBackend{...}) replays a
// schedule in simulation, ParseSchedule → BindBackend(&TCBackend{...})
// replays the same bytes against real containers.
func BindBackend(b Backend, ops []Op) *Scenario {
	sc := NewScenario()
	for _, op := range ops {
		op := op
		switch op.Verb {
		case "partition":
			sc.At(op.At, fmt.Sprintf("partition %s %s", op.A, op.B), func() error { return b.Partition(op.A, op.B) })
		case "heal":
			sc.At(op.At, fmt.Sprintf("heal %s %s", op.A, op.B), func() error { return b.Heal(op.A, op.B) })
		case "down":
			sc.At(op.At, "down "+op.A, func() error { return b.HostDown(op.A) })
		case "up":
			sc.At(op.At, "up "+op.A, func() error { return b.HostUp(op.A) })
		case "link":
			sc.At(op.At, fmt.Sprintf("link %s %s", op.A, op.B), func() error { return b.SetLink(op.A, op.B, op.Link) })
		case "move":
			sc.At(op.At, fmt.Sprintf("move %s %s", op.A, op.B), func() error { return b.Move(op.A, op.B) })
		}
	}
	return sc
}
