package chaos

import (
	"fmt"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"indiss/internal/simnet"
)

// TCBackend executes the schedule DSL's faults against *real* gateway
// containers: latency/bandwidth/loss through tc/netem qdiscs, hosts
// crashed by taking their links administratively down — the
// containerized rig's fault plane (DESIGN.md §14). The same schedule
// file that drives a simnet soak drives this executor unmodified; only
// the binding differs.
//
// Fault semantics, mapped onto interface-granular tooling:
//
//   - `link A B latency=.. bandwidth=.. loss=..` installs a netem
//     qdisc on the fault interface of BOTH segments' gateways, so each
//     crossing direction pays the profile once — the same accounting
//     as a simnet link.
//   - `partition A B` is netem loss 100% on both gateways' fault
//     interfaces: sockets stay bound, multicast memberships survive,
//     but nothing crosses — a real split, heal-able in place.
//   - `heal A B` replaces the netem qdisc with a zero-impairment one.
//   - `down H` / `up H` run `ip link set <iface> down/up` in H's
//     container: the gateway process stays alive but falls off the
//     fabric, the closest real-world analogue of a simnet host crash
//     that does not also discard the container's state.
//   - `move` has no container analogue and fails the step.
//
// In the shipped topologies each gateway has exactly one fault
// interface (the shared LAN in deploy/lan2, the backbone in
// deploy/campus3), so interface granularity and link granularity
// coincide; a schedule against a custom topology must respect this.
type TCBackend struct {
	// Targets maps every schedule target name — segment names for
	// partition/heal/link, host names for down/up — to the container
	// and interface the fault applies to.
	Targets map[string]TCTarget
	// Run executes one command inside a named container. Nil defaults
	// to DockerExecRunner("").
	Run Runner
}

// TCTarget is one gateway container's fault surface.
type TCTarget struct {
	// Container is the container (or compose service) name.
	Container string
	// Iface is the interface inside the container that faults apply
	// to, e.g. "eth0".
	Iface string
}

// Runner executes argv inside a named container and returns the
// combined output on failure. The indirection keeps the executor
// testable without a docker daemon and portable across `docker exec`,
// `docker compose exec`, podman, or plain nsenter.
type Runner func(container string, argv ...string) error

// DockerExecRunner runs commands via `docker exec <container> ...`.
// With a non-empty composeFile it runs `docker compose -f <file> exec
// -T <service> ...` instead, resolving compose service names without
// depending on the project's container-name template.
func DockerExecRunner(composeFile string) Runner {
	return func(container string, argv ...string) error {
		var cmd *exec.Cmd
		if composeFile != "" {
			args := append([]string{"compose", "-f", composeFile, "exec", "-T", container}, argv...)
			cmd = exec.Command("docker", args...)
		} else {
			args := append([]string{"exec", container}, argv...)
			cmd = exec.Command("docker", args...)
		}
		if out, err := cmd.CombinedOutput(); err != nil {
			return fmt.Errorf("chaos: %s: %v: %s", strings.Join(argv, " "), err, strings.TrimSpace(string(out)))
		}
		return nil
	}
}

var _ Backend = (*TCBackend)(nil)

func (b *TCBackend) runner() Runner {
	if b.Run != nil {
		return b.Run
	}
	return DockerExecRunner("")
}

// target resolves a schedule name or fails with the known names — the
// same late-binding contract as the simnet executor.
func (b *TCBackend) target(name string) (TCTarget, error) {
	t, ok := b.Targets[name]
	if !ok {
		known := make([]string, 0, len(b.Targets))
		for k := range b.Targets {
			known = append(known, k)
		}
		sort.Strings(known)
		return TCTarget{}, fmt.Errorf("chaos: no tc target %q (have %v)", name, known)
	}
	return t, nil
}

// netemArgs renders a link profile as netem parameters. A zero profile
// renders no parameters: a bare netem qdisc forwards unimpaired, which
// is how heal restores service without needing a fragile `qdisc del`.
func netemArgs(l simnet.Link) []string {
	var args []string
	if l.Latency > 0 {
		args = append(args, "delay", fmt.Sprintf("%dus", l.Latency.Microseconds()))
	}
	if l.LossRate > 0 {
		args = append(args, "loss", strconv.FormatFloat(l.LossRate*100, 'f', -1, 64)+"%")
	}
	if l.BandwidthBps > 0 {
		// simnet prices bandwidth in bytes/s; tc rates are in bits/s.
		args = append(args, "rate", strconv.FormatInt(l.BandwidthBps*8, 10)+"bit")
	}
	return args
}

// applyNetem replaces the root qdisc on both named segments' fault
// interfaces. `replace` (not add/change) keeps every transition legal
// whatever qdisc is installed.
func (b *TCBackend) applyNetem(a, c string, args []string) error {
	run := b.runner()
	for _, name := range []string{a, c} {
		t, err := b.target(name)
		if err != nil {
			return err
		}
		argv := append([]string{"tc", "qdisc", "replace", "dev", t.Iface, "root", "netem"}, args...)
		if err := run(t.Container, argv...); err != nil {
			return err
		}
	}
	return nil
}

// Partition blackholes both directions with netem loss 100%.
func (b *TCBackend) Partition(a, c string) error {
	return b.applyNetem(a, c, []string{"loss", "100%"})
}

// Heal replaces the impairment with a pass-through netem qdisc.
func (b *TCBackend) Heal(a, c string) error {
	return b.applyNetem(a, c, nil)
}

// SetLink installs the profile on both endpoints' fault interfaces.
func (b *TCBackend) SetLink(a, c string, l simnet.Link) error {
	return b.applyNetem(a, c, netemArgs(l))
}

// HostDown takes the target's fault interface administratively down.
func (b *TCBackend) HostDown(host string) error {
	t, err := b.target(host)
	if err != nil {
		return err
	}
	return b.runner()(t.Container, "ip", "link", "set", "dev", t.Iface, "down")
}

// HostUp brings the target's fault interface back up.
func (b *TCBackend) HostUp(host string) error {
	t, err := b.target(host)
	if err != nil {
		return err
	}
	return b.runner()(t.Container, "ip", "link", "set", "dev", t.Iface, "up")
}

// Move is a simnet-only verb: containers do not roam between networks
// mid-run.
func (b *TCBackend) Move(host, seg string) error {
	return fmt.Errorf("chaos: verb \"move\" (%s -> %s) has no container executor; run this schedule against simnet", host, seg)
}

// ScheduleSpan returns the offset of the last op plus grace — how long
// a driver should let a bound schedule run before checking invariants.
func ScheduleSpan(ops []Op, grace time.Duration) time.Duration {
	var max time.Duration
	for _, op := range ops {
		if op.At > max {
			max = op.At
		}
	}
	return max + grace
}
