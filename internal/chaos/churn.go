package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"indiss/internal/core"
	"indiss/internal/dnssd"
	"indiss/internal/jini"
	"indiss/internal/simnet"
	"indiss/internal/slp"
	"indiss/internal/ssdp"
	"indiss/internal/upnp"
)

// Mix weights the churn workload across the four SDPs. Zero values
// exclude the protocol.
type Mix struct {
	SLP, DNSSD, UPnP, Jini int
}

// DefaultMix spreads services across all four protocols, biased toward
// the two cheap multicast-announcing stacks so large soaks stay fast.
func DefaultMix() Mix { return Mix{SLP: 35, DNSSD: 45, UPnP: 10, Jini: 10} }

func (m Mix) total() int { return m.SLP + m.DNSSD + m.UPnP + m.Jini }

// WorkloadConfig tunes a churn workload.
type WorkloadConfig struct {
	// Mix weights service creation across SDPs (default DefaultMix).
	Mix Mix
	// TTL is the advertised lifetime of every churned service: the SLP
	// registration lifetime, DNS-SD record TTL and SSDP max-age all
	// derive from it (min 1s granularity — native lifetimes are whole
	// seconds). Default 3s.
	TTL time.Duration
	// AnnounceInterval spaces the native announcement loops (SLP
	// SAAdvert, Jini lookup announcements, SSDP notify). Default 300ms.
	AnnounceInterval time.Duration
	// RefreshInterval spaces the workload's own re-registration of live
	// services, keeping them inside their TTL like any real service
	// renewing its lease. Default TTL/3.
	RefreshInterval time.Duration
	// BasePort is the first port assigned to per-service endpoints
	// (default 21000). Each service gets BasePort+seq.
	BasePort int
	// JiniCacheTTL mirrors the gateways' JiniUnitConfig.CacheTTL — Jini
	// has no advertised lifetime, so the staleness bound of a silently
	// dead Jini service is whatever the gateways cache items for.
	// Default 30 minutes (the unit's default).
	JiniCacheTTL time.Duration
	// Seed makes op selection reproducible. Zero picks a fixed default.
	Seed int64
}

func (c *WorkloadConfig) fill() {
	if c.Mix.total() <= 0 {
		c.Mix = DefaultMix()
	}
	if c.TTL <= 0 {
		c.TTL = 3 * time.Second
	}
	if c.TTL < time.Second {
		c.TTL = time.Second
	}
	if c.AnnounceInterval <= 0 {
		c.AnnounceInterval = 300 * time.Millisecond
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = c.TTL / 3
	}
	if c.BasePort == 0 {
		c.BasePort = 21000
	}
	if c.JiniCacheTTL <= 0 {
		c.JiniCacheTTL = 30 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// hostAgents is one churn host's set of native protocol endpoints.
// Agents are created lazily per protocol; one host can carry hundreds of
// services per SDP (the SLP SA and DNS-SD responder multiplex
// registrations; UPnP devices are one process each, like real stacks).
type hostAgents struct {
	host    *simnet.Host
	sa      *slp.ServiceAgent
	resp    *dnssd.Responder
	ls      *jini.LookupService
	jc      *jini.Client
	devices map[string]*upnp.RootDevice // kind → device
}

// Expected is one service the views must have converged on.
type Expected struct {
	Kind   string
	Origin core.SDP
}

// Withdrawn is one service the workload has taken away.
type Withdrawn struct {
	Kind   string
	Origin core.SDP
	// Clean marks withdrawals the origin protocol advertises (DNS-SD
	// goodbye, SSDP byebye, a Jini registrar drop the gateway's pull
	// notices): the record must vanish from every view. Silent deaths
	// (SLP deregistration has no multicast farewell) are only bounded
	// by ExpiresBy.
	Clean bool
	// ExpiresBy is the latest instant any cached copy may live to: the
	// service's last advertisement plus its advertised lifetime.
	ExpiresBy time.Time
}

// Expectation is a consistent snapshot of what the workload believes the
// world should converge to — the invariant checker's reference input.
type Expectation struct {
	Live      []Expected
	Withdrawn []Withdrawn
}

// service is one churned service's live bookkeeping. mu serializes the
// native operations on the service (advertise vs deregister), so a
// refresh racing a deregistration can never re-register the service
// after its farewell went out.
type service struct {
	mu      sync.Mutex
	kind    string
	sdp     core.SDP
	agents  *hostAgents
	port    int
	url     string // native registration URL (SLP), diagnostics elsewhere
	jid     jini.ServiceID
	refresh time.Time // last (re-)advertisement
}

// Workload drives service churn across a set of hosts: register new
// services, deregister live ones, re-advertise — at whatever pace and
// volume the scenario demands — while tracking the expected outcome for
// the invariant checker. All methods are safe for concurrent use.
type Workload struct {
	cfg WorkloadConfig

	mu        sync.Mutex
	agents    []*hostAgents
	live      map[string]*service // kind → service
	withdrawn []Withdrawn
	seq       int
	next      int // round-robin host cursor
	rng       *rand.Rand
	closed    bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewWorkload builds a workload over the given hosts. Services are
// assigned round-robin across them; put one or more churn hosts on every
// segment whose gateway should observe native churn. The workload's
// refresher keeps live services re-advertised within their TTL until
// Close (or Deregister) stops it for a given service.
func NewWorkload(hosts []*simnet.Host, cfg WorkloadConfig) (*Workload, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("chaos: workload needs at least one host")
	}
	cfg.fill()
	w := &Workload{
		cfg:  cfg,
		live: make(map[string]*service),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		stop: make(chan struct{}),
	}
	for _, h := range hosts {
		w.agents = append(w.agents, &hostAgents{host: h, devices: make(map[string]*upnp.RootDevice)})
	}
	w.wg.Add(1)
	go func() { defer w.wg.Done(); w.refreshLoop() }()
	return w, nil
}

// Close shuts every agent down. Still-live services die silently with
// their last advertised TTL (a mass crash, not a mass goodbye).
func (w *Workload) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	agents := w.agents
	w.mu.Unlock()
	close(w.stop)
	w.wg.Wait()
	for _, a := range agents {
		if a.sa != nil {
			a.sa.Close()
		}
		if a.resp != nil {
			a.resp.Close()
		}
		if a.ls != nil {
			a.ls.Close()
		}
		for _, dev := range a.devices {
			dev.Close()
		}
	}
}

// ttlSeconds is the advertised lifetime in whole seconds (≥1).
func (w *Workload) ttlSeconds() int {
	s := int(w.cfg.TTL / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Register creates n new services, mix-weighted and spread round-robin
// across the workload's hosts.
func (w *Workload) Register(n int) error {
	for i := 0; i < n; i++ {
		if err := w.registerOne(); err != nil {
			return err
		}
	}
	return nil
}

func (w *Workload) registerOne() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("chaos: workload closed")
	}
	sdp := w.pickSDPLocked()
	agents := w.agents[w.next%len(w.agents)]
	w.next++
	w.seq++
	seq := w.seq
	w.mu.Unlock()

	kind := "churn-" + pad4(seq)
	port := w.cfg.BasePort + seq
	svc := &service{kind: kind, sdp: sdp, agents: agents, port: port, refresh: time.Now()}
	if err := w.advertise(svc, true); err != nil {
		return fmt.Errorf("chaos: register %s over %s: %w", kind, sdp, err)
	}
	w.mu.Lock()
	w.live[kind] = svc
	w.mu.Unlock()
	return nil
}

// advertise performs the native registration (first=true) or a renewal.
func (w *Workload) advertise(svc *service, first bool) error {
	a := svc.agents
	ip := a.host.IP()
	switch svc.sdp {
	case core.SDPSLP:
		sa, err := w.slpAgent(a)
		if err != nil {
			return err
		}
		svc.url = "service:" + svc.kind + "://" + ip + ":" + strconv.Itoa(svc.port)
		return sa.Register("service:"+svc.kind, svc.url, w.cfg.TTL, nil)
	case core.SDPDNSSD:
		resp, err := w.dnssdResponder(a)
		if err != nil {
			return err
		}
		svc.url = "dnssd://" + ip + ":" + strconv.Itoa(svc.port)
		return resp.Register(dnssd.Registration{
			Instance: svc.kind,
			Service:  dnssd.ServiceType(svc.kind),
			Port:     svc.port,
			TTL:      w.ttlSeconds(),
			Text:     map[string]string{"friendlyName": svc.kind},
		})
	case core.SDPUPnP:
		if !first {
			return nil // the device's own notify loop renews
		}
		dev, err := upnp.NewRootDevice(a.host, upnp.DeviceConfig{
			Kind:            svc.kind,
			FriendlyName:    svc.kind,
			DescriptionPort: svc.port,
			SSDP: ssdp.ServerConfig{
				MaxAge:         w.ttlSeconds(),
				NotifyInterval: w.cfg.RefreshInterval,
			},
		})
		if err != nil {
			return err
		}
		svc.url = "soap://" + ip + ":" + strconv.Itoa(svc.port)
		w.mu.Lock()
		a.devices[svc.kind] = dev
		w.mu.Unlock()
		return nil
	case core.SDPJini:
		if !first {
			return nil // registrar items carry no lease to renew here
		}
		ls, jc, err := w.jiniInfra(a)
		if err != nil {
			return err
		}
		svc.url = ip + ":" + strconv.Itoa(svc.port)
		id, err := jc.Register(ls.Locator(), jini.ServiceItem{
			Type:     "net.jini." + svc.kind + ".Service",
			Endpoint: svc.url,
			Attrs:    []jini.Entry{{Name: "friendlyName", Value: svc.kind}},
		}, 10*time.Second) // generous: at 5k-service scale the registrar competes for CPU
		if err != nil {
			return err
		}
		svc.jid = id
		return nil
	}
	return fmt.Errorf("unknown SDP %s", svc.sdp)
}

// Deregister withdraws n random live services, each by its protocol's
// native means: DNS-SD goodbye and SSDP byebye are advertised farewells,
// a Jini registrar drop is noticed by the gateway's pull, and an SLP
// deregistration is silent — the service just stops being announced.
// It returns the withdrawn states (also available via Expectation).
func (w *Workload) Deregister(n int) ([]Withdrawn, error) {
	var out []Withdrawn
	for i := 0; i < n; i++ {
		w.mu.Lock()
		svc := w.pickLiveLocked()
		if svc == nil {
			w.mu.Unlock()
			break
		}
		delete(w.live, svc.kind)
		w.mu.Unlock()
		wd, err := w.deregister(svc)
		if err != nil {
			return out, err
		}
		w.mu.Lock()
		w.withdrawn = append(w.withdrawn, wd)
		w.mu.Unlock()
		out = append(out, wd)
	}
	return out, nil
}

func (w *Workload) deregister(svc *service) (Withdrawn, error) {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	wd := Withdrawn{
		Kind:      svc.kind,
		Origin:    svc.sdp,
		ExpiresBy: svc.refresh.Add(w.cfg.TTL),
	}
	a := svc.agents
	switch svc.sdp {
	case core.SDPSLP:
		// Silent death: no multicast farewell exists.
		if err := a.sa.Deregister(svc.url); err != nil {
			return wd, err
		}
	case core.SDPDNSSD:
		wd.Clean = true
		a.resp.Unregister(svc.kind, dnssd.ServiceType(svc.kind))
	case core.SDPUPnP:
		wd.Clean = true
		wd.ExpiresBy = svc.refresh.Add(time.Duration(w.ttlSeconds()) * time.Second)
		w.mu.Lock()
		dev := a.devices[svc.kind]
		delete(a.devices, svc.kind)
		w.mu.Unlock()
		if dev != nil {
			dev.Close() // announces byebye
		}
	case core.SDPJini:
		wd.Clean = true
		wd.ExpiresBy = svc.refresh.Add(w.cfg.JiniCacheTTL)
		a.ls.Unregister(svc.jid)
	}
	return wd, nil
}

// Readvertise renews n random live services immediately (on top of the
// background refresher) — the re-advertisement half of churn.
func (w *Workload) Readvertise(n int) error {
	for i := 0; i < n; i++ {
		w.mu.Lock()
		svc := w.pickLiveLocked()
		w.mu.Unlock()
		if svc == nil {
			return nil
		}
		if err := w.refreshOne(svc); err != nil {
			return err
		}
	}
	return nil
}

// Churn performs n random operations — register, deregister,
// re-advertise — roughly evenly split, the steady-state volatility of a
// production fleet.
func (w *Workload) Churn(n int) error {
	for i := 0; i < n; i++ {
		w.mu.Lock()
		op := w.rng.Intn(3)
		w.mu.Unlock()
		var err error
		switch op {
		case 0:
			err = w.registerOne()
		case 1:
			_, err = w.Deregister(1)
		default:
			err = w.Readvertise(1)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// LiveCount returns the number of currently registered services.
func (w *Workload) LiveCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.live)
}

// Expectation snapshots what the views should converge to.
func (w *Workload) Expectation() Expectation {
	w.mu.Lock()
	defer w.mu.Unlock()
	exp := Expectation{
		Live:      make([]Expected, 0, len(w.live)),
		Withdrawn: make([]Withdrawn, len(w.withdrawn)),
	}
	for _, svc := range w.live {
		exp.Live = append(exp.Live, Expected{Kind: svc.kind, Origin: svc.sdp})
	}
	copy(exp.Withdrawn, w.withdrawn)
	return exp
}

// MaxStaleness returns the latest ExpiresBy of all withdrawn services —
// how long a final checkpoint must wait before demanding every grave be
// empty. Clean withdrawals vanish long before their bound; the result is
// driven by the silent ones.
func (w *Workload) MaxStaleness() time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	var latest time.Time
	for _, wd := range w.withdrawn {
		if wd.Clean {
			continue
		}
		if wd.ExpiresBy.After(latest) {
			latest = wd.ExpiresBy
		}
	}
	return latest
}

// refreshLoop renews every live service each RefreshInterval, keeping
// the fleet inside its advertised TTL.
func (w *Workload) refreshLoop() {
	ticker := time.NewTicker(w.cfg.RefreshInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.mu.Lock()
			snapshot := make([]*service, 0, len(w.live))
			for _, svc := range w.live {
				snapshot = append(snapshot, svc)
			}
			w.mu.Unlock()
			for _, svc := range snapshot {
				_ = w.refreshOne(svc)
			}
		}
	}
}

func (w *Workload) refreshOne(svc *service) error {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	w.mu.Lock()
	_, stillLive := w.live[svc.kind]
	if stillLive {
		svc.refresh = time.Now()
	}
	w.mu.Unlock()
	if !stillLive {
		return nil // raced a deregistration; do not resurrect
	}
	return w.advertise(svc, false)
}

// pickSDPLocked draws an SDP per the mix weights. Requires w.mu.
func (w *Workload) pickSDPLocked() core.SDP {
	m := w.cfg.Mix
	n := w.rng.Intn(m.total())
	switch {
	case n < m.SLP:
		return core.SDPSLP
	case n < m.SLP+m.DNSSD:
		return core.SDPDNSSD
	case n < m.SLP+m.DNSSD+m.UPnP:
		return core.SDPUPnP
	default:
		return core.SDPJini
	}
}

// pickLiveLocked draws a random live service. Requires w.mu.
func (w *Workload) pickLiveLocked() *service {
	if len(w.live) == 0 {
		return nil
	}
	n := w.rng.Intn(len(w.live))
	for _, svc := range w.live {
		if n == 0 {
			return svc
		}
		n--
	}
	return nil
}

// Lazy per-host agent construction.

func (w *Workload) slpAgent(a *hostAgents) (*slp.ServiceAgent, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if a.sa == nil {
		sa, err := slp.NewServiceAgent(a.host, slp.AgentConfig{
			AnnounceInterval: w.cfg.AnnounceInterval,
		})
		if err != nil {
			return nil, err
		}
		a.sa = sa
	}
	return a.sa, nil
}

func (w *Workload) dnssdResponder(a *hostAgents) (*dnssd.Responder, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if a.resp == nil {
		resp, err := dnssd.NewResponder(a.host, dnssd.ResponderConfig{})
		if err != nil {
			return nil, err
		}
		a.resp = resp
	}
	return a.resp, nil
}

func (w *Workload) jiniInfra(a *hostAgents) (*jini.LookupService, *jini.Client, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if a.ls == nil {
		ls, err := jini.NewLookupService(a.host, jini.LookupConfig{
			AnnounceInterval: w.cfg.AnnounceInterval,
		})
		if err != nil {
			return nil, nil, err
		}
		a.ls = ls
		a.jc = jini.NewClient(a.host, jini.ClientConfig{})
	}
	return a.ls, a.jc, nil
}

// pad4 renders a sequence number as a fixed-width decimal so kinds sort
// and read uniformly ("churn-0042").
func pad4(n int) string {
	s := strconv.Itoa(n)
	for len(s) < 4 {
		s = "0" + s
	}
	return s
}
