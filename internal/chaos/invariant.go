package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"indiss/internal/core"
)

// Gateway is one federated gateway's view under invariant checking.
type Gateway struct {
	ID   string
	View *core.ServiceView
}

// CheckerConfig tunes the invariant checker.
type CheckerConfig struct {
	// KindPrefix scopes the checks to the workload's services (default
	// "churn-"): gateways may legitimately hold other records.
	KindPrefix string
	// MaxHops is the topology's federation diameter; any record claiming
	// more hops is a stale-path ghost (default 8, the federation cap).
	MaxHops int
	// Slack absorbs clock skew and propagation delay in staleness bounds
	// (default 2s).
	Slack time.Duration
}

func (c *CheckerConfig) fill() {
	if c.KindPrefix == "" {
		c.KindPrefix = "churn-"
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 8
	}
	if c.Slack <= 0 {
		c.Slack = 2 * time.Second
	}
}

// Violation is one broken invariant at one gateway.
type Violation struct {
	Gateway   string
	Kind      string
	Invariant string // "convergence" | "origin" | "duplicate" | "withdrawal" | "resurrection" | "staleness" | "hops"
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s kind=%s: %s", v.Gateway, v.Invariant, v.Kind, v.Detail)
}

// Checker asserts the soak invariants over a set of gateway views at
// quiescent checkpoints:
//
//   - convergence: every live service is known — exactly once, under its
//     true native origin — in every gateway's view;
//   - zero duplicates: no kind ever has two records in one view (a
//     duplicate means a double bridge or a federation loop);
//   - no resurrection: once a withdrawn service has been observed gone
//     from every view, it must never reappear;
//   - TTL-bounded staleness: a record of a dead service may linger only
//     until the service's last advertised lifetime runs out.
//
// The checker is stateful across checkpoints (it remembers graves), so
// use one checker per scenario.
type Checker struct {
	cfg CheckerConfig
	gws []Gateway

	buried map[string]bool // kinds observed fully withdrawn everywhere
}

// NewChecker builds a checker over the given gateways.
func NewChecker(cfg CheckerConfig, gws ...Gateway) *Checker {
	cfg.fill()
	return &Checker{cfg: cfg, gws: gws, buried: make(map[string]bool)}
}

// UpdateView repoints a gateway at a new view — a restarted gateway is
// the same identity with a fresh (empty) view, and the checker's burial
// state must survive the restart to catch resurrections across it.
func (c *Checker) UpdateView(id string, v *core.ServiceView) {
	for i := range c.gws {
		if c.gws[i].ID == id {
			c.gws[i].View = v
		}
	}
}

// Check evaluates every invariant against the expectation and returns
// the violations (nil when the system is converged and clean).
func (c *Checker) Check(exp Expectation) []Violation {
	now := time.Now()
	var out []Violation

	perGW := make([]map[string][]core.ServiceRecord, len(c.gws))
	for i, gw := range c.gws {
		byKind := make(map[string][]core.ServiceRecord)
		for _, rec := range gw.View.Find("", now) {
			lk := strings.ToLower(rec.Kind)
			if !strings.HasPrefix(lk, c.cfg.KindPrefix) {
				continue
			}
			byKind[lk] = append(byKind[lk], rec)
		}
		perGW[i] = byKind

		// Zero duplicates + sane hop counts, over everything present.
		for kind, recs := range byKind {
			if len(recs) > 1 {
				out = append(out, Violation{
					Gateway: gw.ID, Kind: kind, Invariant: "duplicate",
					Detail: fmt.Sprintf("%d records: %s", len(recs), describe(recs)),
				})
			}
			for _, rec := range recs {
				if rec.Hops > c.cfg.MaxHops {
					out = append(out, Violation{
						Gateway: gw.ID, Kind: kind, Invariant: "hops",
						Detail: fmt.Sprintf("hops=%d exceeds topology diameter %d (stale-path ghost)", rec.Hops, c.cfg.MaxHops),
					})
				}
			}
		}
	}

	// Convergence: every live service, in every view, with its origin.
	for _, svc := range exp.Live {
		kind := strings.ToLower(svc.Kind)
		for i, gw := range c.gws {
			recs := perGW[i][kind]
			if len(recs) == 0 {
				out = append(out, Violation{
					Gateway: gw.ID, Kind: kind, Invariant: "convergence",
					Detail: "live service missing from view",
				})
				continue
			}
			if recs[0].Origin != svc.Origin {
				out = append(out, Violation{
					Gateway: gw.ID, Kind: kind, Invariant: "origin",
					Detail: fmt.Sprintf("origin %s, want %s (double bridge?)", recs[0].Origin, svc.Origin),
				})
			}
		}
	}

	// Withdrawals: clean ones must vanish; silent ones may linger only
	// inside their TTL bound. Fully vanished kinds are buried — and must
	// stay so.
	for _, wd := range exp.Withdrawn {
		kind := strings.ToLower(wd.Kind)
		present := false
		for i, gw := range c.gws {
			recs := perGW[i][kind]
			if len(recs) == 0 {
				continue
			}
			present = true
			if c.buried[kind] {
				out = append(out, Violation{
					Gateway: gw.ID, Kind: kind, Invariant: "resurrection",
					Detail: fmt.Sprintf("withdrawn record reappeared after burial: %s", describe(recs)),
				})
				continue
			}
			for _, rec := range recs {
				if rec.Expires.After(wd.ExpiresBy.Add(c.cfg.Slack)) {
					out = append(out, Violation{
						Gateway: gw.ID, Kind: kind, Invariant: "staleness",
						Detail: fmt.Sprintf("expires %v past the dead service's bound %v",
							rec.Expires.Format(time.RFC3339Nano), wd.ExpiresBy.Format(time.RFC3339Nano)),
					})
				}
			}
			if wd.Clean {
				// Transiently tolerable — propagation takes a moment, so
				// WaitQuiescent polls until clean withdrawals clear; one
				// surviving to the deadline fails the checkpoint.
				out = append(out, Violation{
					Gateway: gw.ID, Kind: kind, Invariant: "withdrawal",
					Detail: "cleanly withdrawn record still present",
				})
			}
		}
		if !present {
			c.buried[kind] = true
		}
	}
	return out
}

// WaitQuiescent polls Check until it is clean or the deadline passes;
// the error lists the surviving violations (capped for readability).
func (c *Checker) WaitQuiescent(exp Expectation, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last []Violation
	for {
		start := time.Now()
		last = c.Check(exp)
		if len(last) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return violationsError("quiescence", last)
		}
		time.Sleep(pollInterval(time.Since(start)))
	}
}

// pollInterval sizes the gap between checks so polling never eats more
// than ~a third of the machine: a full-fleet Check locks every view,
// and on a starved box (race detector, one core) back-to-back checks
// at a fixed cadence can steal the very CPU the gateways need to
// converge — the checker would then time out a system that was only
// slow because it was being watched.
func pollInterval(checkCost time.Duration) time.Duration {
	const floor = 25 * time.Millisecond
	if d := 2 * checkCost; d > floor {
		return d
	}
	return floor
}

// WaitBuried polls until every withdrawn service is gone from every view
// — the grave-is-empty checkpoint that proves TTL-bounded staleness
// actually evicts.
func (c *Checker) WaitBuried(exp Expectation, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		start := time.Now()
		c.Check(exp) // updates burial state
		missing := 0
		for _, wd := range exp.Withdrawn {
			if !c.buried[strings.ToLower(wd.Kind)] {
				missing++
			}
		}
		if missing == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: %d withdrawn services still present somewhere after %v", missing, timeout)
		}
		time.Sleep(pollInterval(time.Since(start)))
	}
}

// CheckOrphans asserts TTL-bounded staleness after a gateway crash:
// every record that entered the federation through the dead gateway must
// expire by crashedAt+maxTTL — its origin segment has no bridge left to
// renew it.
func (c *Checker) CheckOrphans(originGW string, crashedAt time.Time, maxTTL time.Duration) []Violation {
	bound := crashedAt.Add(maxTTL + c.cfg.Slack)
	now := time.Now()
	var out []Violation
	for _, gw := range c.gws {
		for _, rec := range gw.View.Find("", now) {
			if !rec.Remote || rec.OriginGW != originGW {
				continue
			}
			if !strings.HasPrefix(strings.ToLower(rec.Kind), c.cfg.KindPrefix) {
				continue
			}
			if rec.Expires.After(bound) {
				out = append(out, Violation{
					Gateway: gw.ID, Kind: strings.ToLower(rec.Kind), Invariant: "staleness",
					Detail: fmt.Sprintf("orphan of crashed %s expires %v past bound %v",
						originGW, rec.Expires.Format(time.RFC3339Nano), bound.Format(time.RFC3339Nano)),
				})
			}
		}
	}
	return out
}

func violationsError(phase string, vs []Violation) error {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Invariant != vs[j].Invariant {
			return vs[i].Invariant < vs[j].Invariant
		}
		return vs[i].Kind < vs[j].Kind
	})
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d invariant violations at %s checkpoint", len(vs), phase)
	for i, v := range vs {
		if i == 20 {
			fmt.Fprintf(&b, "\n  … and %d more", len(vs)-i)
			break
		}
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}

func describe(recs []core.ServiceRecord) string {
	parts := make([]string, 0, len(recs))
	for _, r := range recs {
		parts = append(parts, fmt.Sprintf("{%s %s gw=%s hops=%d remote=%t}",
			r.Origin, r.URL, r.OriginGW, r.Hops, r.Remote))
	}
	return strings.Join(parts, " ")
}
