package chaos

import (
	"testing"
	"time"

	"indiss/internal/core"
	"indiss/internal/simnet"
)

// The workload's bookkeeping is testable without gateways: agents bind
// and announce on a bare host, and the expectation must mirror every
// register/deregister faithfully.

func newChurnNet(t *testing.T) *simnet.Network {
	t.Helper()
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	return n
}

func TestWorkloadBookkeeping(t *testing.T) {
	n := newChurnNet(t)
	h := n.MustAddHost("svc", "10.0.0.2")
	w, err := NewWorkload([]*simnet.Host{h}, WorkloadConfig{
		TTL:              time.Second,
		AnnounceInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	if err := w.Register(20); err != nil {
		t.Fatal(err)
	}
	if got := w.LiveCount(); got != 20 {
		t.Fatalf("LiveCount = %d, want 20", got)
	}
	exp := w.Expectation()
	if len(exp.Live) != 20 || len(exp.Withdrawn) != 0 {
		t.Fatalf("expectation %d live / %d withdrawn, want 20/0", len(exp.Live), len(exp.Withdrawn))
	}
	// All four SDPs must appear at the default mix over 20 draws… not
	// guaranteed for the small ones; assert the two heavyweights at
	// least, and kind uniqueness for all.
	kinds := make(map[string]bool)
	bySDP := make(map[core.SDP]int)
	for _, svc := range exp.Live {
		if kinds[svc.Kind] {
			t.Fatalf("duplicate kind %s", svc.Kind)
		}
		kinds[svc.Kind] = true
		bySDP[svc.Origin]++
	}
	if bySDP[core.SDPSLP] == 0 || bySDP[core.SDPDNSSD] == 0 {
		t.Fatalf("mix skipped a major SDP: %v", bySDP)
	}

	wds, err := w.Deregister(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(wds) != 5 || w.LiveCount() != 15 {
		t.Fatalf("after Deregister(5): %d withdrawn, %d live", len(wds), w.LiveCount())
	}
	for _, wd := range wds {
		if wd.ExpiresBy.IsZero() {
			t.Errorf("withdrawn %s has no staleness bound", wd.Kind)
		}
		switch wd.Origin {
		case core.SDPSLP:
			if wd.Clean {
				t.Errorf("SLP withdrawal marked clean; SLP has no multicast farewell")
			}
		case core.SDPDNSSD, core.SDPUPnP, core.SDPJini:
			if !wd.Clean {
				t.Errorf("%s withdrawal not marked clean", wd.Origin)
			}
		}
	}

	if err := w.Readvertise(5); err != nil {
		t.Fatal(err)
	}
	if err := w.Churn(10); err != nil {
		t.Fatal(err)
	}
	exp = w.Expectation()
	if len(exp.Live) != w.LiveCount() {
		t.Fatalf("expectation live %d != LiveCount %d", len(exp.Live), w.LiveCount())
	}
}

func TestCheckerFlagsViolations(t *testing.T) {
	viewA, viewB := core.NewServiceView(), core.NewServiceView()
	c := NewChecker(CheckerConfig{MaxHops: 2, Slack: 50 * time.Millisecond},
		Gateway{ID: "gwA", View: viewA}, Gateway{ID: "gwB", View: viewB})

	now := time.Now()
	put := func(v *core.ServiceView, kind, url string, origin core.SDP, hops int, expires time.Time) {
		v.Put(core.ServiceRecord{
			Origin: origin, Kind: kind, URL: url,
			Attrs: map[string]string{}, Expires: expires,
			Remote: hops > 0, Hops: hops, OriginGW: "gwX",
		})
	}

	// Live service present in A, missing in B → convergence violation.
	put(viewA, "churn-0001", "u1", core.SDPSLP, 0, now.Add(time.Hour))
	exp := Expectation{Live: []Expected{{Kind: "churn-0001", Origin: core.SDPSLP}}}
	vs := c.Check(exp)
	if !hasViolation(vs, "convergence", "gwB") {
		t.Fatalf("missing convergence violation: %v", vs)
	}

	// Duplicate: two records of one kind in one view.
	put(viewB, "churn-0001", "u1", core.SDPSLP, 0, now.Add(time.Hour))
	put(viewB, "churn-0001", "u2", core.SDPUPnP, 1, now.Add(time.Hour))
	vs = c.Check(exp)
	if !hasViolation(vs, "duplicate", "gwB") {
		t.Fatalf("missing duplicate violation: %v", vs)
	}
	viewB.Remove(core.SDPUPnP, "u2")

	// Hops beyond the diameter.
	put(viewA, "churn-0002", "u3", core.SDPJini, 7, now.Add(time.Hour))
	vs = c.Check(exp)
	if !hasViolation(vs, "hops", "gwA") {
		t.Fatalf("missing hops violation: %v", vs)
	}
	viewA.Remove(core.SDPJini, "u3")

	// Silent withdrawal whose record outlives its bound → staleness.
	put(viewA, "churn-0003", "u4", core.SDPSLP, 0, now.Add(time.Hour))
	exp2 := Expectation{Withdrawn: []Withdrawn{{
		Kind: "churn-0003", Origin: core.SDPSLP, ExpiresBy: now.Add(time.Second),
	}}}
	vs = c.Check(exp2)
	if !hasViolation(vs, "staleness", "gwA") {
		t.Fatalf("missing staleness violation: %v", vs)
	}

	// Resurrection: buried kind reappears.
	viewA.Remove(core.SDPSLP, "u4")
	if vs := c.Check(exp2); len(vs) != 0 {
		t.Fatalf("clean state still violates: %v", vs)
	}
	put(viewA, "churn-0003", "u4", core.SDPSLP, 0, now.Add(time.Hour))
	vs = c.Check(exp2)
	if !hasViolation(vs, "resurrection", "gwA") {
		t.Fatalf("missing resurrection violation: %v", vs)
	}
}

func hasViolation(vs []Violation, invariant, gw string) bool {
	for _, v := range vs {
		if v.Invariant == invariant && v.Gateway == gw {
			return true
		}
	}
	return false
}
