// Package chaos is the chaos-and-scale testbed driver: timed fault
// schedules against a live simnet fabric, churn workloads that
// register/deregister/re-advertise services across all four SDPs, and an
// invariant checker that asserts — at every quiescent checkpoint — view
// convergence across gateways, zero duplicates, no resurrection of
// withdrawn records, and TTL-bounded staleness for everything that died
// without a goodbye. DESIGN.md §9 describes the model and how to write
// a new scenario.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"indiss/internal/simnet"
)

// Step is one timed fault of a scenario, executed At after Run starts.
type Step struct {
	At   time.Duration
	Name string
	Do   func() error
}

// Scenario is a composed, timed fault schedule. Build one with the
// fluent methods (or parse a text schedule, see ParseSchedule), then Run
// it — typically concurrently with a workload — and join the error.
type Scenario struct {
	steps []Step
}

// NewScenario returns an empty scenario.
func NewScenario() *Scenario { return &Scenario{} }

// At appends an arbitrary fault action.
func (sc *Scenario) At(at time.Duration, name string, do func() error) *Scenario {
	sc.steps = append(sc.steps, Step{At: at, Name: name, Do: do})
	return sc
}

// Partition cuts the link between two segments at the given offset.
func (sc *Scenario) Partition(at time.Duration, n *simnet.Network, a, b string) *Scenario {
	return sc.At(at, fmt.Sprintf("partition %s %s", a, b), func() error { return n.Partition(a, b) })
}

// Heal restores a partitioned link at the given offset.
func (sc *Scenario) Heal(at time.Duration, n *simnet.Network, a, b string) *Scenario {
	return sc.At(at, fmt.Sprintf("heal %s %s", a, b), func() error { return n.Heal(a, b) })
}

// HostDown crashes a host at the given offset.
func (sc *Scenario) HostDown(at time.Duration, n *simnet.Network, host string) *Scenario {
	return sc.At(at, "down "+host, func() error { return n.SetHostDown(host, true) })
}

// HostUp revives a host at the given offset.
func (sc *Scenario) HostUp(at time.Duration, n *simnet.Network, host string) *Scenario {
	return sc.At(at, "up "+host, func() error { return n.SetHostDown(host, false) })
}

// SetLink mutates a live link's profile at the given offset.
func (sc *Scenario) SetLink(at time.Duration, n *simnet.Network, a, b string, l simnet.Link) *Scenario {
	return sc.At(at, fmt.Sprintf("link %s %s", a, b), func() error { return n.SetLink(a, b, l) })
}

// Move roams a host onto another segment at the given offset.
func (sc *Scenario) Move(at time.Duration, n *simnet.Network, host, seg string) *Scenario {
	return sc.At(at, fmt.Sprintf("move %s %s", host, seg), func() error { return n.MoveHost(host, seg) })
}

// Run executes the schedule: each step fires at its offset from the call
// (steps sharing an offset fire in insertion order). A closed stop
// channel aborts between steps. The first failing step aborts the run
// and is returned, wrapped with the step's name and offset.
func (sc *Scenario) Run(stop <-chan struct{}) error {
	steps := make([]Step, len(sc.steps))
	copy(steps, sc.steps)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	t0 := time.Now()
	for _, st := range steps {
		wait := time.Until(t0.Add(st.At))
		if wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-stop:
				timer.Stop()
				return nil
			case <-timer.C:
			}
		} else {
			select {
			case <-stop:
				return nil
			default:
			}
		}
		if err := st.Do(); err != nil {
			return fmt.Errorf("chaos: step %q at %v: %w", st.Name, st.At, err)
		}
	}
	return nil
}

// Start runs the scenario on its own goroutine and delivers Run's result
// on the returned channel.
func (sc *Scenario) Start(stop <-chan struct{}) <-chan error {
	done := make(chan error, 1)
	go func() { done <- sc.Run(stop) }()
	return done
}
