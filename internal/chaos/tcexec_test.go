package chaos

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"indiss/internal/simnet"
)

// fakeRunner records every command the executor would run in a
// container, as "container: argv...".
type fakeRunner struct {
	calls []string
	fail  map[string]error // container -> injected error
}

func (f *fakeRunner) run(container string, argv ...string) error {
	f.calls = append(f.calls, container+": "+strings.Join(argv, " "))
	if err := f.fail[container]; err != nil {
		return err
	}
	return nil
}

func rigTargets() map[string]TCTarget {
	return map[string]TCTarget{
		"seg1": {Container: "gw1", Iface: "eth0"},
		"seg2": {Container: "gw2", Iface: "eth0"},
		"gw2":  {Container: "gw2", Iface: "eth0"},
	}
}

// The heart of the rig's fault plane: each schedule verb must render
// the exact tc/ip command lines on the right containers.
func TestTCBackendCommandLines(t *testing.T) {
	fr := &fakeRunner{}
	b := &TCBackend{Targets: rigTargets(), Run: fr.run}

	if err := b.Partition("seg1", "seg2"); err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if err := b.Heal("seg1", "seg2"); err != nil {
		t.Fatalf("Heal: %v", err)
	}
	if err := b.SetLink("seg1", "seg2", simnet.Link{
		Latency:      5 * time.Millisecond,
		LossRate:     0.25,
		BandwidthBps: 1_000_000,
	}); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	if err := b.HostDown("gw2"); err != nil {
		t.Fatalf("HostDown: %v", err)
	}
	if err := b.HostUp("gw2"); err != nil {
		t.Fatalf("HostUp: %v", err)
	}

	want := []string{
		"gw1: tc qdisc replace dev eth0 root netem loss 100%",
		"gw2: tc qdisc replace dev eth0 root netem loss 100%",
		"gw1: tc qdisc replace dev eth0 root netem",
		"gw2: tc qdisc replace dev eth0 root netem",
		"gw1: tc qdisc replace dev eth0 root netem delay 5000us loss 25% rate 8000000bit",
		"gw2: tc qdisc replace dev eth0 root netem delay 5000us loss 25% rate 8000000bit",
		"gw2: ip link set dev eth0 down",
		"gw2: ip link set dev eth0 up",
	}
	if len(fr.calls) != len(want) {
		t.Fatalf("got %d commands, want %d:\n%s", len(fr.calls), len(want), strings.Join(fr.calls, "\n"))
	}
	for i := range want {
		if fr.calls[i] != want[i] {
			t.Errorf("command %d:\n got %q\nwant %q", i, fr.calls[i], want[i])
		}
	}
}

func TestTCBackendUnknownTarget(t *testing.T) {
	fr := &fakeRunner{}
	b := &TCBackend{Targets: rigTargets(), Run: fr.run}
	err := b.Partition("seg1", "seg9")
	if err == nil || !strings.Contains(err.Error(), `"seg9"`) {
		t.Fatalf("want unknown-target error naming seg9, got %v", err)
	}
	// The known names must appear so a typo in a schedule is a
	// one-glance fix.
	if !strings.Contains(err.Error(), "seg1") {
		t.Errorf("error should list known targets: %v", err)
	}
	// seg1 resolves first, so exactly its command ran before the miss.
	if len(fr.calls) != 1 {
		t.Errorf("got %d commands before failure, want 1: %v", len(fr.calls), fr.calls)
	}
}

func TestTCBackendRunnerErrorPropagates(t *testing.T) {
	fr := &fakeRunner{fail: map[string]error{"gw2": fmt.Errorf("container not running")}}
	b := &TCBackend{Targets: rigTargets(), Run: fr.run}
	if err := b.Heal("seg1", "seg2"); err == nil || !strings.Contains(err.Error(), "container not running") {
		t.Fatalf("want runner error surfaced, got %v", err)
	}
}

func TestTCBackendMoveRefused(t *testing.T) {
	b := &TCBackend{Targets: rigTargets(), Run: (&fakeRunner{}).run}
	if err := b.Move("gw2", "seg1"); err == nil || !strings.Contains(err.Error(), "simnet") {
		t.Fatalf("move must refuse and point at simnet, got %v", err)
	}
}

// The portability contract in one test: the same schedule bytes bind
// and execute against both the simnet backend and the tc backend.
func TestScheduleRunsAgainstBothBackends(t *testing.T) {
	const src = `
# partition + heal with a lossy interlude — the rig's standard drill
at 0ms link seg1 seg2 latency=2ms loss=0.1
at 5ms partition seg1 seg2
at 10ms heal seg1 seg2
at 15ms down gw2
at 20ms up gw2
`
	ops, err := ParseSchedule(src)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}

	t.Run("simnet", func(t *testing.T) {
		n, err := simnet.NewTopology(simnet.Config{}).
			Segment("seg1").Segment("seg2").
			Chain(simnet.Link{}).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		n.MustAddHostOn("gw2", "10.0.2.9", "seg2")
		if err := Bind(n, ops).Run(nil); err != nil {
			t.Fatalf("simnet replay: %v", err)
		}
	})

	t.Run("tc", func(t *testing.T) {
		fr := &fakeRunner{}
		sc := BindBackend(&TCBackend{Targets: rigTargets(), Run: fr.run}, ops)
		if err := sc.Run(nil); err != nil {
			t.Fatalf("tc replay: %v", err)
		}
		// 3 two-sided verbs + down + up = 8 container commands.
		if len(fr.calls) != 8 {
			t.Fatalf("got %d commands, want 8:\n%s", len(fr.calls), strings.Join(fr.calls, "\n"))
		}
		for _, c := range fr.calls {
			if !strings.Contains(c, "tc qdisc") && !strings.Contains(c, "ip link") {
				t.Errorf("unexpected command %q", c)
			}
		}
	})
}

// The shipped rig schedule itself must honour the portability
// contract: deploy/schedules/partition-heal.chaos parses and binds
// against both executors, byte-for-byte as the rig runs it.
func TestShippedScheduleBindsBothBackends(t *testing.T) {
	src, err := os.ReadFile("../../deploy/schedules/partition-heal.chaos")
	if err != nil {
		t.Fatalf("shipped schedule missing: %v", err)
	}
	ops, err := ParseSchedule(string(src))
	if err != nil {
		t.Fatalf("shipped schedule does not parse: %v", err)
	}
	if len(ops) == 0 {
		t.Fatal("shipped schedule holds no ops")
	}
	for _, op := range ops {
		if op.Verb == "move" {
			t.Errorf("shipped schedule uses %q, which the tc executor refuses", op.Verb)
		}
	}
	// Squash the offsets so the simnet replay is instant; the verbs and
	// targets are what the contract is about.
	for i := range ops {
		ops[i].At = 0
	}

	n, err := simnet.NewTopology(simnet.Config{}).
		Segment("seg1").Segment("seg2").
		Chain(simnet.Link{}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	if err := Bind(n, ops).Run(nil); err != nil {
		t.Fatalf("simnet replay of the shipped schedule: %v", err)
	}

	fr := &fakeRunner{}
	tcb := &TCBackend{
		Targets: map[string]TCTarget{
			"seg1": {Container: "gw1", Iface: "eth0"},
			"seg2": {Container: "gw2", Iface: "eth0"},
		},
		Run: fr.run,
	}
	if err := BindBackend(tcb, ops).Run(nil); err != nil {
		t.Fatalf("tc replay of the shipped schedule: %v", err)
	}
	if len(fr.calls) == 0 {
		t.Fatal("tc replay issued no container commands")
	}
}

func TestScheduleSpan(t *testing.T) {
	ops := []Op{{At: 5 * time.Millisecond}, {At: 40 * time.Millisecond}, {At: 10 * time.Millisecond}}
	if got := ScheduleSpan(ops, 10*time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("ScheduleSpan = %v, want 50ms", got)
	}
	if got := ScheduleSpan(nil, time.Second); got != time.Second {
		t.Fatalf("ScheduleSpan(nil) = %v, want 1s", got)
	}
}
