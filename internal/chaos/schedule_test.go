package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"indiss/internal/simnet"
)

func TestParseScheduleFull(t *testing.T) {
	src := `
# rolling partition
at 100ms partition seg1 seg2
at 400ms heal seg1 seg2

at 500ms down gw2
at 900ms up gw2
at 1s link seg2 seg3 latency=5ms bandwidth=1000000 loss=0.25
at 2s move client1 seg3
`
	ops, err := ParseSchedule(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{At: 100 * time.Millisecond, Verb: "partition", A: "seg1", B: "seg2"},
		{At: 400 * time.Millisecond, Verb: "heal", A: "seg1", B: "seg2"},
		{At: 500 * time.Millisecond, Verb: "down", A: "gw2"},
		{At: 900 * time.Millisecond, Verb: "up", A: "gw2"},
		{At: time.Second, Verb: "link", A: "seg2", B: "seg3",
			Link: simnet.Link{Latency: 5 * time.Millisecond, BandwidthBps: 1_000_000, LossRate: 0.25}},
		{At: 2 * time.Second, Verb: "move", A: "client1", B: "seg3"},
	}
	if !reflect.DeepEqual(ops, want) {
		t.Fatalf("parsed %+v\nwant %+v", ops, want)
	}

	// Canonical render must parse back to the same ops.
	again, err := ParseSchedule(FormatSchedule(ops))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, FormatSchedule(ops))
	}
	if !reflect.DeepEqual(again, ops) {
		t.Fatalf("round-trip drifted:\n%+v\n%+v", again, ops)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, src := range []string{
		"partition a b",             // missing "at"
		"at xyz partition a b",      // bad duration
		"at -5ms partition a b",     // negative offset
		"at 1s partition a",         // missing segment
		"at 1s explode a b",         // unknown verb
		"at 1s down",                // missing host
		"at 1s link a b loss=1.5",   // loss out of range
		"at 1s link a b loss=-0",    // negative zero does not round-trip
		"at 1s link a b speed=fast", // unknown option
		"at 1s link a b latency",    // not key=value
		"at 1s move gw1",            // missing destination segment
		"at 1s move gw1 seg2 seg3",  // too many args
	} {
		if _, err := ParseSchedule(src); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", src)
		}
	}
}

func TestScheduleBindAndRun(t *testing.T) {
	n, err := simnet.NewTopology(simnet.Config{}).
		Segment("seg1").Segment("seg2").
		Chain(simnet.Link{}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	n.MustAddHostOn("gw2", "10.0.2.9", "seg2")

	ops, err := ParseSchedule(`
at 0ms partition seg1 seg2
at 20ms down gw2
at 40ms up gw2
at 60ms heal seg1 seg2
at 80ms link seg1 seg2 latency=1ms
at 90ms move gw2 seg1
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Bind(n, ops).Run(nil); err != nil {
		t.Fatal(err)
	}
	if n.Partitioned("seg1", "seg2") {
		t.Error("link still partitioned after heal")
	}
	if h := n.HostByName("gw2"); h.Down() {
		t.Error("host still down after up")
	}
	if l, ok := n.GetLink("seg1", "seg2"); !ok || l.Latency != time.Millisecond {
		t.Errorf("link = %+v, want latency=1ms", l)
	}
	if seg := n.HostByName("gw2").Segment(); seg != "seg1" {
		t.Errorf("gw2 on %q after move, want seg1", seg)
	}

	// A bad target surfaces as the step's error.
	bad := Bind(n, []Op{{Verb: "down", A: "nope"}})
	if err := bad.Run(nil); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("Run with unknown host: err = %v", err)
	}
}

// FuzzParseSchedule: the parser never panics, and anything it accepts
// renders canonically and parses back to the same ops.
func FuzzParseSchedule(f *testing.F) {
	f.Add("at 100ms partition seg1 seg2")
	f.Add("at 1s link a b latency=5ms bandwidth=10 loss=0.5")
	f.Add("at 0s down gw\nat 1h up gw\n# comment\n")
	f.Add("at 1ns link x y")
	f.Add("at 9999h heal é ß")
	f.Add("at 2s move client1 seg3")
	f.Add("at 0s move a b\nat 1ms move b a")
	f.Fuzz(func(t *testing.T, src string) {
		ops, err := ParseSchedule(src)
		if err != nil {
			return
		}
		text := FormatSchedule(ops)
		again, err := ParseSchedule(text)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%q", err, text)
		}
		if !reflect.DeepEqual(again, ops) {
			t.Fatalf("round-trip drifted:\nfirst  %+v\nsecond %+v\ntext %q", ops, again, text)
		}
	})
}
