package ssdp

import (
	"fmt"
	"sync"
	"time"

	"indiss/internal/netapi"
)

// ClientConfig tunes an SSDP client (the discovery half of a UPnP control
// point).
type ClientConfig struct {
	// ProcessingDelay models stack overhead per handled datagram.
	ProcessingDelay time.Duration
}

// Client issues M-SEARCHes and listens for notifications.
type Client struct {
	host netapi.Stack
	cfg  ClientConfig
}

// NewClient creates an SSDP client on host.
func NewClient(host netapi.Stack, cfg ClientConfig) *Client {
	return &Client{host: host, cfg: cfg}
}

func (c *Client) delay() {
	if c.cfg.ProcessingDelay > 0 {
		netapi.SleepPrecise(c.cfg.ProcessingDelay)
	}
}

// SearchFirst multicasts an M-SEARCH and returns the first matching
// response — the client waiting time the paper measures.
func (c *Client) SearchFirst(target string, mx int, timeout time.Duration) (*SearchResponse, error) {
	conn, err := c.host.ListenUDP(0)
	if err != nil {
		return nil, fmt.Errorf("ssdp client: %w", err)
	}
	defer conn.Close()

	req := &SearchRequest{ST: target, MX: mx}
	c.delay()
	if err := conn.WriteTo(req.Marshal(), netapi.Addr{IP: MulticastGroup, Port: Port}); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, netapi.ErrTimeout
		}
		dg, err := conn.Recv(remaining)
		if err != nil {
			return nil, err
		}
		msg, err := Parse(dg.Payload)
		if err != nil {
			continue
		}
		resp, ok := msg.(*SearchResponse)
		if !ok {
			continue
		}
		c.delay()
		return resp, nil
	}
}

// Search multicasts an M-SEARCH and collects every response until the
// window (mx seconds, at least one RetryWindow) closes. Responses are
// deduplicated by USN+ST.
func (c *Client) Search(target string, mx int, window time.Duration) ([]*SearchResponse, error) {
	conn, err := c.host.ListenUDP(0)
	if err != nil {
		return nil, fmt.Errorf("ssdp client: %w", err)
	}
	defer conn.Close()

	req := &SearchRequest{ST: target, MX: mx}
	c.delay()
	if err := conn.WriteTo(req.Marshal(), netapi.Addr{IP: MulticastGroup, Port: Port}); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(window)
	seen := make(map[string]struct{})
	var out []*SearchResponse
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return out, nil
		}
		dg, err := conn.Recv(remaining)
		if err != nil {
			return out, nil
		}
		msg, err := Parse(dg.Payload)
		if err != nil {
			continue
		}
		resp, ok := msg.(*SearchResponse)
		if !ok {
			continue
		}
		key := resp.USN + "|" + resp.ST
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, resp)
	}
}

// NotifyHandler observes multicast NOTIFY announcements.
type NotifyHandler func(*Notify)

// Listener passively listens for NOTIFY announcements on the SSDP group —
// the passive discovery model on the UPnP side.
type Listener struct {
	conn netapi.PacketConn
	wg   sync.WaitGroup
}

// Listen binds the SSDP port (it must be free on this host) and invokes
// handler for each announcement heard.
func Listen(host netapi.Stack, handler NotifyHandler) (*Listener, error) {
	conn, err := host.ListenUDP(Port)
	if err != nil {
		return nil, fmt.Errorf("ssdp listen: %w", err)
	}
	if err := conn.JoinGroup(MulticastGroup); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ssdp listen: %w", err)
	}
	l := &Listener{conn: conn}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			dg, err := conn.Recv(0)
			if err != nil {
				return
			}
			msg, err := Parse(dg.Payload)
			if err != nil {
				continue
			}
			if n, ok := msg.(*Notify); ok {
				handler(n)
			}
		}
	}()
	return l, nil
}

// Close stops the listener.
func (l *Listener) Close() {
	l.conn.Close()
	l.wg.Wait()
}

// Cache tracks live advertisements by USN+NT, honouring max-age expiry and
// byebye withdrawal — the control point's view of the network.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
}

type cacheEntry struct {
	notify  Notify
	expires time.Time
}

// NewCache creates an empty advertisement cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]cacheEntry)}
}

// Observe folds one announcement into the cache.
func (c *Cache) Observe(n *Notify, now time.Time) {
	key := n.USN + "|" + n.NT
	c.mu.Lock()
	defer c.mu.Unlock()
	if n.NTS == NTSByeBye {
		delete(c.entries, key)
		return
	}
	maxAge := n.MaxAge
	if maxAge <= 0 {
		maxAge = 1800
	}
	c.entries[key] = cacheEntry{
		notify:  *n,
		expires: now.Add(time.Duration(maxAge) * time.Second),
	}
}

// Live returns the unexpired advertisements.
func (c *Cache) Live(now time.Time) []Notify {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Notify
	for key, e := range c.entries {
		if e.expires.Before(now) {
			delete(c.entries, key)
			continue
		}
		out = append(out, e.notify)
	}
	return out
}

// Len returns the number of cached entries, expired or not.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
