package ssdp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"indiss/internal/netapi"
)

// Advertisement is one (NT, USN) pair a server announces and answers
// searches for. A UPnP root device advertises several: upnp:rootdevice,
// its uuid, its device type, and each service type (UDA 1.0 §1.1.2).
type Advertisement struct {
	NT       string
	USN      string
	Location string
}

// ServerConfig tunes an SSDP server.
type ServerConfig struct {
	// Server is the product token sent in SERVER headers.
	Server string
	// MaxAge is the advertised cache lifetime in seconds.
	MaxAge int
	// NotifyInterval spaces periodic ssdp:alive bursts. Zero announces
	// only once at startup.
	NotifyInterval time.Duration
	// ProcessingDelay models stack overhead per handled datagram — the
	// CyberLink profile of DESIGN.md §5.
	ProcessingDelay time.Duration
	// Seed makes MX jitter reproducible; zero picks a fixed default.
	Seed int64
}

// Server is the device-side SSDP engine: it answers M-SEARCHes for its
// advertisements and multicasts alive/byebye notifications.
type Server struct {
	host netapi.Stack
	conn netapi.PacketConn
	cfg  ServerConfig

	mu  sync.Mutex
	ads []Advertisement
	rng *rand.Rand

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewServer binds the SSDP port on host, announces the advertisements,
// and starts serving searches. When another stack on the host already
// holds 1900 exclusively, the server falls back to a shared
// multicast-only binder — the SO_REUSEADDR pattern real UPnP stacks use
// so several devices coexist on one machine. Searches arrive by
// multicast either way; only unicast M-SEARCH (rare, and unused by the
// bridge) needs the exclusive socket.
func NewServer(host netapi.Stack, cfg ServerConfig, ads []Advertisement) (*Server, error) {
	conn, err := host.ListenUDP(Port)
	if errors.Is(err, netapi.ErrPortInUse) {
		conn, err = host.ListenMulticastUDP(Port)
	}
	if err != nil {
		return nil, fmt.Errorf("ssdp server: %w", err)
	}
	if err := conn.JoinGroup(MulticastGroup); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ssdp server: %w", err)
	}
	if cfg.MaxAge <= 0 {
		cfg.MaxAge = 1800
	}
	if cfg.Server == "" {
		cfg.Server = "simnet/1.0 UPnP/1.0 indiss/1.0"
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Server{
		host: host,
		conn: conn,
		cfg:  cfg,
		ads:  append([]Advertisement(nil), ads...),
		rng:  rand.New(rand.NewSource(seed)),
		stop: make(chan struct{}),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serve()
	}()
	s.notifyAll(NTSAlive)
	if cfg.NotifyInterval > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.announce()
		}()
	}
	return s, nil
}

// Close sends byebye for every advertisement and stops the server.
func (s *Server) Close() {
	select {
	case <-s.stop:
		return
	default:
	}
	s.notifyAll(NTSByeBye)
	close(s.stop)
	s.conn.Close()
	s.wg.Wait()
}

// AddAdvertisement announces a new (NT, USN) pair at runtime.
func (s *Server) AddAdvertisement(ad Advertisement) {
	s.mu.Lock()
	s.ads = append(s.ads, ad)
	s.mu.Unlock()
	s.sendNotify(ad, NTSAlive)
}

// RemoveAdvertisement sends byebye for and forgets the advertisement with
// the given USN and NT.
func (s *Server) RemoveAdvertisement(nt, usn string) {
	s.mu.Lock()
	kept := s.ads[:0]
	var removed []Advertisement
	for _, ad := range s.ads {
		if ad.NT == nt && ad.USN == usn {
			removed = append(removed, ad)
			continue
		}
		kept = append(kept, ad)
	}
	s.ads = kept
	s.mu.Unlock()
	for _, ad := range removed {
		s.sendNotify(ad, NTSByeBye)
	}
}

func (s *Server) snapshot() []Advertisement {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Advertisement(nil), s.ads...)
}

func (s *Server) serve() {
	for {
		dg, err := s.conn.Recv(0)
		if err != nil {
			return
		}
		msg, err := Parse(dg.Payload)
		if err != nil {
			continue
		}
		search, ok := msg.(*SearchRequest)
		if !ok {
			continue
		}
		if s.cfg.ProcessingDelay > 0 {
			netapi.SleepPrecise(s.cfg.ProcessingDelay)
		}
		s.answer(search, dg.Src)
	}
}

// answer sends one unicast response per matching advertisement, after a
// random delay within MX seconds (UDA 1.0 §1.2.3).
func (s *Server) answer(search *SearchRequest, dst netapi.Addr) {
	for _, ad := range s.snapshot() {
		if !TargetMatches(search.ST, ad.NT) {
			continue
		}
		st := search.ST
		if st == TargetAll {
			st = ad.NT
		}
		resp := &SearchResponse{
			ST:       st,
			USN:      ad.USN,
			Location: ad.Location,
			Server:   s.cfg.Server,
			MaxAge:   s.cfg.MaxAge,
		}
		s.jitter(search.MX)
		_ = s.conn.WriteTo(resp.Marshal(), dst)
	}
}

// jitter sleeps a random duration within mx seconds. MX 0 — which the
// paper's composed M-SEARCH uses ("MX: 0") — responds immediately.
func (s *Server) jitter(mx int) {
	if mx <= 0 {
		return
	}
	s.mu.Lock()
	d := time.Duration(s.rng.Int63n(int64(mx) * int64(time.Second)))
	s.mu.Unlock()
	netapi.SleepPrecise(d)
}

func (s *Server) announce() {
	ticker := time.NewTicker(s.cfg.NotifyInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.notifyAll(NTSAlive)
		}
	}
}

func (s *Server) notifyAll(nts string) {
	for _, ad := range s.snapshot() {
		s.sendNotify(ad, nts)
	}
}

func (s *Server) sendNotify(ad Advertisement, nts string) {
	n := &Notify{
		NT:       ad.NT,
		NTS:      nts,
		USN:      ad.USN,
		Location: ad.Location,
		Server:   s.cfg.Server,
		MaxAge:   s.cfg.MaxAge,
	}
	dst := netapi.Addr{IP: MulticastGroup, Port: Port}
	_ = s.conn.WriteTo(n.Marshal(), dst)
}
