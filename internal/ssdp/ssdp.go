// Package ssdp implements the Simple Service Discovery Protocol, the
// discovery layer of UPnP (UPnP Device Architecture 1.0, section 1).
//
// SSDP messages are HTTP-formatted and carried over UDP: multicast
// (HTTPMU) for searches and announcements on 239.255.255.250:1900, unicast
// (HTTPU) for search responses. The paper's §2.4 example is an SSDP
// exchange: the M-SEARCH composed by the UPnP unit and the 200 OK carrying
// the LOCATION of the description document.
//
// The package reuses the httpx codec — the parser-reuse point of paper §3.
package ssdp

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"indiss/internal/httpx"
)

// IANA identification tag of SSDP/UPnP (paper Figure 2:
// "239.255.255.250:1900 : UPnP").
const (
	// Port is the registered SSDP port.
	Port = 1900
	// MulticastGroup is the SSDP multicast address.
	MulticastGroup = "239.255.255.250"
)

// Well-known search targets and notification types.
const (
	// TargetAll matches every advertisement ("ssdp:all").
	TargetAll = "ssdp:all"
	// TargetRootDevice matches root devices only.
	TargetRootDevice = "upnp:rootdevice"
	// ManDiscover is the mandatory MAN header value of M-SEARCH.
	ManDiscover = `"ssdp:discover"`
	// NTSAlive marks an arrival announcement.
	NTSAlive = "ssdp:alive"
	// NTSByeBye marks a departure announcement.
	NTSByeBye = "ssdp:byebye"
)

// ErrNotSSDP reports a datagram that is not a valid SSDP message.
var ErrNotSSDP = errors.New("ssdp: not an ssdp message")

// SearchRequest is an M-SEARCH multicast query (UDA 1.0 §1.2.2).
type SearchRequest struct {
	// Host is the "group:port" the search is addressed to.
	Host string
	// ST is the search target.
	ST string
	// MX bounds the random response delay in seconds.
	MX int
	// UserAgent identifies the searching stack (UDA 1.1 §1.3.2). INDISS
	// bridges tag their composed searches here so a peer bridge on the
	// same segment does not translate a translation.
	UserAgent string
}

// Marshal renders the M-SEARCH datagram.
func (m *SearchRequest) Marshal() []byte {
	host := m.Host
	if host == "" {
		host = fmt.Sprintf("%s:%d", MulticastGroup, Port)
	}
	hdr := httpx.NewHeader(
		"HOST", host,
		"MAN", ManDiscover,
		"MX", strconv.Itoa(m.MX),
		"ST", m.ST,
	)
	if m.UserAgent != "" {
		hdr.Add("USER-AGENT", m.UserAgent)
	}
	req := &httpx.Request{
		Method: "M-SEARCH",
		Target: "*",
		Header: hdr,
	}
	return req.Marshal()
}

// SearchResponse is the unicast 200 OK answering an M-SEARCH (UDA 1.0
// §1.2.3).
type SearchResponse struct {
	// ST echoes the search target that matched.
	ST string
	// USN is the unique service name, e.g.
	// "uuid:ClockDevice::upnp:clock".
	USN string
	// Location is the URL of the device description document — the
	// indirection that makes UPnP discovery multi-step (paper §4.3).
	Location string
	// Server identifies the responding stack.
	Server string
	// MaxAge is the advertisement validity in seconds.
	MaxAge int
}

// Marshal renders the response datagram.
func (m *SearchResponse) Marshal() []byte {
	resp := &httpx.Response{
		StatusCode: 200,
		Header: httpx.NewHeader(
			"CACHE-CONTROL", fmt.Sprintf("max-age=%d", m.MaxAge),
			"EXT", "",
			"LOCATION", m.Location,
			"SERVER", m.Server,
			"ST", m.ST,
			"USN", m.USN,
		),
	}
	return resp.Marshal()
}

// Notify is a NOTIFY announcement (UDA 1.0 §1.1.2): ssdp:alive on arrival
// and refresh, ssdp:byebye on departure.
type Notify struct {
	// Host is the "group:port" the announcement is addressed to.
	Host string
	// NT is the notification type (device or service type, or
	// upnp:rootdevice).
	NT string
	// NTS is NTSAlive or NTSByeBye.
	NTS string
	// USN is the unique service name.
	USN string
	// Location is the description URL (alive only).
	Location string
	// Server identifies the stack (alive only).
	Server string
	// MaxAge is the advertisement validity in seconds (alive only).
	MaxAge int
}

// Marshal renders the NOTIFY datagram.
func (m *Notify) Marshal() []byte {
	host := m.Host
	if host == "" {
		host = fmt.Sprintf("%s:%d", MulticastGroup, Port)
	}
	h := httpx.NewHeader("HOST", host, "NT", m.NT, "NTS", m.NTS, "USN", m.USN)
	if m.NTS == NTSAlive {
		h.Add("CACHE-CONTROL", fmt.Sprintf("max-age=%d", m.MaxAge))
		h.Add("LOCATION", m.Location)
		h.Add("SERVER", m.Server)
	}
	req := &httpx.Request{Method: "NOTIFY", Target: "*", Header: h}
	return req.Marshal()
}

// Message is any parsed SSDP message: *SearchRequest, *SearchResponse or
// *Notify.
type Message interface{ ssdpMessage() }

func (*SearchRequest) ssdpMessage()  {}
func (*SearchResponse) ssdpMessage() {}
func (*Notify) ssdpMessage()         {}

// Parse decodes an SSDP datagram.
func Parse(data []byte) (Message, error) {
	if httpx.IsResponse(data) {
		resp, err := httpx.ParseResponse(data)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotSSDP, err)
		}
		return parseSearchResponse(resp)
	}
	req, err := httpx.ParseRequest(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSSDP, err)
	}
	switch req.Method {
	case "M-SEARCH":
		return parseSearchRequest(req)
	case "NOTIFY":
		return parseNotify(req)
	default:
		return nil, fmt.Errorf("%w: method %q", ErrNotSSDP, req.Method)
	}
}

func parseSearchRequest(req *httpx.Request) (*SearchRequest, error) {
	if req.Target != "*" {
		return nil, fmt.Errorf("%w: M-SEARCH target %q", ErrNotSSDP, req.Target)
	}
	man := req.Header.Get("MAN")
	if !strings.EqualFold(strings.Trim(man, `"`), "ssdp:discover") {
		return nil, fmt.Errorf("%w: MAN %q", ErrNotSSDP, man)
	}
	st := req.Header.Get("ST")
	if st == "" {
		return nil, fmt.Errorf("%w: missing ST", ErrNotSSDP)
	}
	mx, err := strconv.Atoi(strings.TrimSpace(req.Header.Get("MX")))
	if err != nil || mx < 0 {
		mx = 0
	}
	return &SearchRequest{
		Host:      req.Header.Get("HOST"),
		ST:        st,
		MX:        mx,
		UserAgent: req.Header.Get("USER-AGENT"),
	}, nil
}

func parseSearchResponse(resp *httpx.Response) (*SearchResponse, error) {
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("%w: status %d", ErrNotSSDP, resp.StatusCode)
	}
	st := resp.Header.Get("ST")
	usn := resp.Header.Get("USN")
	if st == "" || usn == "" {
		return nil, fmt.Errorf("%w: response missing ST/USN", ErrNotSSDP)
	}
	return &SearchResponse{
		ST:       st,
		USN:      usn,
		Location: resp.Header.Get("LOCATION"),
		Server:   resp.Header.Get("SERVER"),
		MaxAge:   parseMaxAge(resp.Header.Get("CACHE-CONTROL")),
	}, nil
}

func parseNotify(req *httpx.Request) (*Notify, error) {
	nt := req.Header.Get("NT")
	nts := req.Header.Get("NTS")
	usn := req.Header.Get("USN")
	if nt == "" || usn == "" {
		return nil, fmt.Errorf("%w: NOTIFY missing NT/USN", ErrNotSSDP)
	}
	if nts != NTSAlive && nts != NTSByeBye {
		return nil, fmt.Errorf("%w: NTS %q", ErrNotSSDP, nts)
	}
	return &Notify{
		Host:     req.Header.Get("HOST"),
		NT:       nt,
		NTS:      nts,
		USN:      usn,
		Location: req.Header.Get("LOCATION"),
		Server:   req.Header.Get("SERVER"),
		MaxAge:   parseMaxAge(req.Header.Get("CACHE-CONTROL")),
	}, nil
}

// parseMaxAge extracts max-age from a Cache-Control value, 0 if absent.
func parseMaxAge(cc string) int {
	for _, part := range strings.Split(cc, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if ok && strings.EqualFold(strings.TrimSpace(k), "max-age") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err == nil && n >= 0 {
				return n
			}
		}
	}
	return 0
}

// TargetMatches implements UDA 1.0 search target matching: ssdp:all
// matches everything; upnp:rootdevice, uuid: and urn: targets match
// exactly against the advertisement's NT.
func TargetMatches(searchTarget, nt string) bool {
	if searchTarget == TargetAll {
		return true
	}
	return strings.EqualFold(searchTarget, nt)
}
