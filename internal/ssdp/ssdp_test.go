package ssdp

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"indiss/internal/simnet"
)

func TestSearchRequestRoundTrip(t *testing.T) {
	m := &SearchRequest{ST: "urn:schemas-upnp-org:device:clock:1", MX: 3}
	msg, err := Parse(m.Marshal())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	back, ok := msg.(*SearchRequest)
	if !ok {
		t.Fatalf("got %T", msg)
	}
	if back.ST != m.ST || back.MX != 3 {
		t.Errorf("round trip: %+v", back)
	}
	if back.Host != "239.255.255.250:1900" {
		t.Errorf("default host = %q", back.Host)
	}
}

func TestSearchResponseRoundTrip(t *testing.T) {
	m := &SearchResponse{
		ST:       "upnp:rootdevice",
		USN:      "uuid:clock-10-0-0-2::upnp:rootdevice",
		Location: "http://10.0.0.2:4004/description.xml",
		Server:   "simnet/1.0 UPnP/1.0 indiss/1.0",
		MaxAge:   1800,
	}
	msg, err := Parse(m.Marshal())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	back, ok := msg.(*SearchResponse)
	if !ok {
		t.Fatalf("got %T", msg)
	}
	if *back != *m {
		t.Errorf("round trip:\n got %+v\nwant %+v", back, m)
	}
}

func TestNotifyRoundTrip(t *testing.T) {
	alive := &Notify{
		NT:       "urn:schemas-upnp-org:device:clock:1",
		NTS:      NTSAlive,
		USN:      "uuid:x::urn:schemas-upnp-org:device:clock:1",
		Location: "http://10.0.0.2:4004/description.xml",
		Server:   "test/1.0",
		MaxAge:   900,
	}
	msg, err := Parse(alive.Marshal())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	back, ok := msg.(*Notify)
	if !ok {
		t.Fatalf("got %T", msg)
	}
	if back.NTS != NTSAlive || back.Location != alive.Location || back.MaxAge != 900 {
		t.Errorf("round trip: %+v", back)
	}

	bye := &Notify{NT: alive.NT, NTS: NTSByeBye, USN: alive.USN}
	msg, err = Parse(bye.Marshal())
	if err != nil {
		t.Fatalf("Parse byebye: %v", err)
	}
	backBye, ok := msg.(*Notify)
	if !ok {
		t.Fatalf("got %T", msg)
	}
	if backBye.NTS != NTSByeBye || backBye.Location != "" {
		t.Errorf("byebye: %+v", backBye)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("not http"),
		[]byte("GET / HTTP/1.1\r\n\r\n"), // wrong method
		[]byte("M-SEARCH * HTTP/1.1\r\nMAN: \"ssdp:discover\"\r\n\r\n"),              // no ST
		[]byte("M-SEARCH * HTTP/1.1\r\nST: x\r\n\r\n"),                               // no MAN
		[]byte("M-SEARCH /path HTTP/1.1\r\nMAN: \"ssdp:discover\"\r\nST: x\r\n\r\n"), // bad target
		[]byte("NOTIFY * HTTP/1.1\r\nNT: x\r\nUSN: u\r\nNTS: bogus\r\n\r\n"),
		[]byte("NOTIFY * HTTP/1.1\r\nNTS: ssdp:alive\r\n\r\n"),
		[]byte("HTTP/1.1 404 Not Found\r\n\r\n"),
		[]byte("HTTP/1.1 200 OK\r\n\r\n"), // missing ST/USN
	}
	for _, data := range bad {
		if _, err := Parse(data); !errors.Is(err, ErrNotSSDP) {
			t.Errorf("Parse(%q) err = %v, want ErrNotSSDP", data, err)
		}
	}
}

func TestParseMaxAge(t *testing.T) {
	tests := []struct {
		cc   string
		want int
	}{
		{"max-age=1800", 1800},
		{"max-age = 60", 60},
		{"no-cache, max-age=5", 5},
		{"", 0},
		{"max-age=bogus", 0},
		{"max-age=-3", 0},
	}
	for _, tt := range tests {
		if got := parseMaxAge(tt.cc); got != tt.want {
			t.Errorf("parseMaxAge(%q) = %d, want %d", tt.cc, got, tt.want)
		}
	}
}

func TestTargetMatches(t *testing.T) {
	tests := []struct {
		st, nt string
		want   bool
	}{
		{TargetAll, "anything", true},
		{TargetRootDevice, TargetRootDevice, true},
		{"uuid:x", "uuid:x", true},
		{"uuid:x", "uuid:y", false},
		{"URN:schemas-upnp-org:device:clock:1", "urn:schemas-upnp-org:device:clock:1", true},
		{"urn:schemas-upnp-org:device:clock:1", "urn:schemas-upnp-org:device:light:1", false},
	}
	for _, tt := range tests {
		if got := TargetMatches(tt.st, tt.nt); got != tt.want {
			t.Errorf("TargetMatches(%q, %q) = %v, want %v", tt.st, tt.nt, got, tt.want)
		}
	}
}

func newNet(t *testing.T) (*simnet.Network, *simnet.Host, *simnet.Host) {
	t.Helper()
	n := simnet.New(simnet.Config{})
	t.Cleanup(n.Close)
	return n, n.MustAddHost("client", "10.0.0.1"), n.MustAddHost("device", "10.0.0.2")
}

func testAds() []Advertisement {
	loc := "http://10.0.0.2:4004/description.xml"
	return []Advertisement{
		{NT: TargetRootDevice, USN: "uuid:clock::upnp:rootdevice", Location: loc},
		{NT: "uuid:clock", USN: "uuid:clock", Location: loc},
		{NT: "urn:schemas-upnp-org:device:clock:1", USN: "uuid:clock::urn:schemas-upnp-org:device:clock:1", Location: loc},
	}
}

func TestServerAnswersMatchingSearch(t *testing.T) {
	_, clientHost, deviceHost := newNet(t)
	srv, err := NewServer(deviceHost, ServerConfig{}, testAds())
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	c := NewClient(clientHost, ClientConfig{})
	resp, err := c.SearchFirst("urn:schemas-upnp-org:device:clock:1", 0, time.Second)
	if err != nil {
		t.Fatalf("SearchFirst: %v", err)
	}
	if resp.ST != "urn:schemas-upnp-org:device:clock:1" {
		t.Errorf("ST = %q", resp.ST)
	}
	if resp.Location != "http://10.0.0.2:4004/description.xml" {
		t.Errorf("Location = %q", resp.Location)
	}
	if resp.MaxAge != 1800 {
		t.Errorf("MaxAge = %d", resp.MaxAge)
	}
}

func TestServerSilentOnMismatch(t *testing.T) {
	_, clientHost, deviceHost := newNet(t)
	srv, err := NewServer(deviceHost, ServerConfig{}, testAds())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(clientHost, ClientConfig{})
	if _, err := c.SearchFirst("urn:schemas-upnp-org:device:light:1", 0, 50*time.Millisecond); !errors.Is(err, simnet.ErrTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestServerSsdpAllReturnsEverything(t *testing.T) {
	_, clientHost, deviceHost := newNet(t)
	srv, err := NewServer(deviceHost, ServerConfig{}, testAds())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(clientHost, ClientConfig{})
	resps, err := c.Search(TargetAll, 0, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Errorf("got %d responses, want 3", len(resps))
	}
	for _, r := range resps {
		if r.ST == TargetAll {
			t.Errorf("ST should echo the advertisement NT, got ssdp:all")
		}
	}
}

func TestNotificationsAliveAndByeBye(t *testing.T) {
	_, clientHost, deviceHost := newNet(t)

	var mu sync.Mutex
	var notifies []Notify
	l, err := Listen(clientHost, func(n *Notify) {
		mu.Lock()
		notifies = append(notifies, *n)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	srv, err := NewServer(deviceHost, ServerConfig{}, testAds())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the three boot alives.
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(notifies) >= 3
	}, "boot alive notifications")

	srv.Close() // three byebyes
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		byes := 0
		for _, n := range notifies {
			if n.NTS == NTSByeBye {
				byes++
			}
		}
		return byes >= 3
	}, "byebye notifications")
}

func TestPeriodicNotify(t *testing.T) {
	_, clientHost, deviceHost := newNet(t)
	var mu sync.Mutex
	count := 0
	l, err := Listen(clientHost, func(n *Notify) {
		if n.NTS == NTSAlive {
			mu.Lock()
			count++
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	srv, err := NewServer(deviceHost, ServerConfig{NotifyInterval: 20 * time.Millisecond}, testAds()[:1])
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count >= 3 // boot + at least two periodic rounds
	}, "periodic alive notifications")
}

func TestAddRemoveAdvertisement(t *testing.T) {
	_, clientHost, deviceHost := newNet(t)
	srv, err := NewServer(deviceHost, ServerConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(clientHost, ClientConfig{})
	if _, err := c.SearchFirst("uuid:late", 0, 50*time.Millisecond); !errors.Is(err, simnet.ErrTimeout) {
		t.Fatalf("unexpected early answer: %v", err)
	}
	srv.AddAdvertisement(Advertisement{NT: "uuid:late", USN: "uuid:late", Location: "http://10.0.0.2:4004/d.xml"})
	if _, err := c.SearchFirst("uuid:late", 0, time.Second); err != nil {
		t.Fatalf("SearchFirst after add: %v", err)
	}
	srv.RemoveAdvertisement("uuid:late", "uuid:late")
	if _, err := c.SearchFirst("uuid:late", 0, 50*time.Millisecond); !errors.Is(err, simnet.ErrTimeout) {
		t.Errorf("still answering after remove: %v", err)
	}
}

func TestCacheObserveAndExpiry(t *testing.T) {
	cache := NewCache()
	now := time.Now()
	alive := &Notify{NT: "x", NTS: NTSAlive, USN: "u", MaxAge: 10}
	cache.Observe(alive, now)
	if live := cache.Live(now.Add(5 * time.Second)); len(live) != 1 {
		t.Errorf("live = %d, want 1", len(live))
	}
	if live := cache.Live(now.Add(15 * time.Second)); len(live) != 0 {
		t.Errorf("expired entry still live: %d", len(live))
	}

	cache.Observe(alive, now)
	cache.Observe(&Notify{NT: "x", NTS: NTSByeBye, USN: "u"}, now)
	if live := cache.Live(now); len(live) != 0 {
		t.Errorf("byebye did not withdraw: %d", len(live))
	}
	if cache.Len() != 0 {
		t.Errorf("Len = %d", cache.Len())
	}
}

func TestMXJitterDelaysResponse(t *testing.T) {
	_, clientHost, deviceHost := newNet(t)
	srv, err := NewServer(deviceHost, ServerConfig{Seed: 99}, testAds()[:1])
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(clientHost, ClientConfig{})
	// MX=1: response is delayed by up to 1s; just assert it arrives and
	// is valid rather than racing on the exact delay.
	resp, err := c.SearchFirst(TargetRootDevice, 1, 3*time.Second)
	if err != nil {
		t.Fatalf("SearchFirst with MX: %v", err)
	}
	if !strings.Contains(resp.USN, "uuid:clock") {
		t.Errorf("USN = %q", resp.USN)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
