//go:build race

package indiss_test

// raceEnabled reports that the race detector instruments this build.
// The heaviest scale scenarios skip under it: instrumentation slows a
// five-thousand-service fleet to where tests measure the detector, not
// the system — the 1k soak is the race-checked configuration.
const raceEnabled = true
