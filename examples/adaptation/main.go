// Adaptation: the passive-passive deadlock of paper Figure 6 and the
// traffic-threshold escape hatch (§4.2).
//
// A passive SLP client only listens; a UPnP service only announces on its
// own group. Without help they can never meet. INDISS on the service host
// monitors network traffic: while the network is quiet it switches to the
// active model and re-advertises the local UPnP clock as SLP SAAdverts;
// when background traffic rises above the threshold it stops, conserving
// the shared bandwidth.
//
//	go run ./examples/adaptation
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"indiss"
	"indiss/internal/netapi"
	"indiss/internal/simnet"
	"indiss/internal/slp"
	"indiss/internal/ssdp"
	"indiss/internal/upnp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptation:", err)
		os.Exit(1)
	}
}

func run() error {
	net := indiss.NewLAN()
	defer net.Close()
	clientHost := net.MustAddHost("client", "10.0.0.1")
	serviceHost := net.MustAddHost("service", "10.0.0.2")
	noiseHost := net.MustAddHost("noise", "10.0.0.7")

	// INDISS first so it hears the device's boot announcements.
	sys, err := indiss.Deploy(serviceHost, indiss.Config{
		Role:         indiss.RoleServiceSide,
		SDPs:         []indiss.SDP{indiss.SLP, indiss.UPnP},
		ThresholdBps: 4_000,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	clock, err := upnp.NewRootDevice(serviceHost, upnp.DeviceConfig{
		Kind:         "clock",
		FriendlyName: "Clock",
		// Periodic NOTIFYs keep the bridge's view warm.
		SSDP: ssdp.ServerConfig{NotifyInterval: 500 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer clock.Close()

	// The passive SLP client: joins the group, never transmits.
	listener, err := clientHost.ListenUDP(slp.Port)
	if err != nil {
		return err
	}
	defer listener.Close()
	if err := listener.JoinGroup(slp.MulticastGroup); err != nil {
		return err
	}

	fmt.Println("phase 1: quiet network — INDISS should switch to the active model")
	if heard := awaitClockAdvert(listener, 5*time.Second); heard {
		fmt.Println("phase 1: passive SLP client heard a translated SAAdvert for the clock ✓")
	} else {
		fmt.Println("phase 1: no advert heard (unexpected)")
	}
	fmt.Printf("phase 1: re-advertising=%v, observed traffic=%.0f B/s\n",
		sys.Readvertising(), sys.Monitor().TotalRate())

	fmt.Println("\nphase 2: flooding background SDP traffic above the threshold")
	noise, err := noiseHost.ListenUDP(0)
	if err != nil {
		return err
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		payload := make([]byte, 300)
		for {
			select {
			case <-stop:
				return
			default:
				_ = noise.WriteTo(payload, simnet.Addr{IP: slp.MulticastGroup, Port: slp.Port})
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()
	defer func() {
		close(stop)
		<-done
	}()

	deadline := time.Now().Add(5 * time.Second)
	for sys.Readvertising() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("phase 2: re-advertising=%v, observed traffic=%.0f B/s\n",
		sys.Readvertising(), sys.Monitor().TotalRate())
	if !sys.Readvertising() {
		fmt.Println("phase 2: INDISS backed off to the passive model under load ✓")
	}
	return nil
}

// awaitClockAdvert waits for a translated SAAdvert mentioning the clock.
func awaitClockAdvert(listener netapi.PacketConn, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		dg, err := listener.Recv(time.Until(deadline))
		if err != nil {
			return false
		}
		msg, err := slp.Parse(dg.Payload)
		if err != nil {
			continue
		}
		if adv, ok := msg.(*slp.SAAdvert); ok && strings.Contains(adv.Attrs, "service:clock") {
			return true
		}
	}
}
