// Smarthome: the networked home of the paper's introduction.
//
// Devices from different manufacturers advertise with different SDPs — a
// UPnP media renderer, an SLP printer, a Jini temperature sensor — and a
// single INDISS gateway makes every service discoverable from every
// protocol. The example prints the full cross-discovery matrix.
//
//	go run ./examples/smarthome
package main

import (
	"fmt"
	"os"
	"time"

	"indiss"
	"indiss/internal/jini"
	"indiss/internal/slp"
	"indiss/internal/upnp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smarthome:", err)
		os.Exit(1)
	}
}

func run() error {
	net := indiss.NewLAN()
	defer net.Close()
	gw := net.MustAddHost("gateway", "10.0.0.9")
	renderHost := net.MustAddHost("renderer", "10.0.0.2")
	printerHost := net.MustAddHost("printer", "10.0.0.3")
	sensorHost := net.MustAddHost("sensor", "10.0.0.4")
	lookupHost := net.MustAddHost("lookup", "10.0.0.5")
	phone := net.MustAddHost("phone", "10.0.0.20")

	// --- the home's devices, each on its own middleware ---

	renderer, err := upnp.NewRootDevice(renderHost, upnp.DeviceConfig{
		Kind:         "mediarenderer",
		FriendlyName: "Living Room Renderer",
		Services:     []upnp.ServiceConfig{{Kind: "avtransport"}},
	})
	if err != nil {
		return err
	}
	defer renderer.Close()

	printerSA, err := slp.NewServiceAgent(printerHost, slp.AgentConfig{
		AnnounceInterval: 200 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer printerSA.Close()
	if err := printerSA.Register("service:printer", "service:printer://10.0.0.3:515",
		time.Hour, slp.AttrList{
			{Name: "friendlyName", Values: []string{"Hallway Printer"}},
			{Name: "color", Values: []string{"true"}},
		}); err != nil {
		return err
	}

	ls, err := jini.NewLookupService(lookupHost, jini.LookupConfig{AnnounceInterval: 200 * time.Millisecond})
	if err != nil {
		return err
	}
	defer ls.Close()
	sensorClient := jini.NewClient(sensorHost, jini.ClientConfig{})
	if _, err := sensorClient.Register(ls.Locator(), jini.ServiceItem{
		Type:     "net.jini.thermometer.Thermometer",
		Endpoint: "10.0.0.4:7700",
		Attrs:    []jini.Entry{{Name: "friendlyName", Value: "Bedroom Thermometer"}},
	}, time.Second); err != nil {
		return err
	}

	// --- one INDISS gateway bridges all three ---

	sys, err := indiss.Deploy(gw, indiss.Config{Role: indiss.RoleGateway, Dynamic: true})
	if err != nil {
		return err
	}
	defer sys.Close()
	fmt.Println("gateway: INDISS up (dynamic composition; units appear on first traffic)")

	// --- cross-discovery matrix from the phone ---

	fmt.Println("\nphone (SLP client) browsing foreign services:")
	ua := slp.NewUserAgent(phone, slp.AgentConfig{})
	for _, kind := range []string{"mediarenderer", "thermometer"} {
		if urls, err := ua.FindFirst("service:"+kind, "", 3*time.Second); err == nil {
			fmt.Printf("  service:%-14s -> %s\n", kind, urls[0].URL)
		} else {
			fmt.Printf("  service:%-14s -> not found (%v)\n", kind, err)
		}
	}

	fmt.Println("\nphone (UPnP control point) browsing foreign services:")
	cp := upnp.NewControlPoint(phone, upnp.ControlPointConfig{})
	for _, kind := range []string{"printer", "thermometer"} {
		if dev, err := cp.Discover(upnp.TypeURN(kind, 1), 0); err == nil {
			fmt.Printf("  %-22s -> %q at %s\n", upnp.ShortType(dev.Desc.DeviceType),
				dev.Desc.FriendlyName, dev.Desc.ModelURL)
		} else {
			fmt.Printf("  %-22s -> not found (%v)\n", kind, err)
		}
	}

	fmt.Println("\nphone (Jini client) browsing the bridge registrar:")
	jc := jini.NewClient(phone, jini.ClientConfig{})
	loc, err := jc.DiscoverLookup(2 * time.Second)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		items, err := jc.Lookup(loc, jini.ServiceTemplate{}, time.Second)
		if err == nil && len(items) >= 2 {
			for _, item := range items {
				fmt.Printf("  %-34s -> %s\n", item.Type, item.Endpoint)
			}
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("  (registrar still syncing)")
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println("\ngateway: units instantiated at run time:", sys.Units())
	fmt.Printf("gateway: %d services in the view\n", len(sys.View().Find("", time.Now())))
	return nil
}
