// Federation: the paper's gateway placement, scaled out to a routed
// campus.
//
// Three segments — the client's, a transit segment, and the services' —
// are bridged by one INDISS gateway each. Multicast discovery never
// leaves a segment; the gateways peer over unicast TCP (a cyclic ring,
// to exercise the loop safety) and exchange ServiceView deltas. An SLP
// client on segment 1 then discovers a UPnP clock that lives two routed
// hops away on segment 3, and a UPnP control point finds the SLP printer
// beside it — no application changed, exactly the paper's claim, now
// across segment boundaries.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"os"
	"time"

	"indiss"
	"indiss/internal/slp"
	"indiss/internal/upnp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
}

func run() error {
	// The campus: three paper-grade LANs chained by 2ms routed links.
	net := indiss.NewCampus(3)
	defer net.Close()

	clientHost := net.MustAddHostOn("client", "10.0.1.1", indiss.CampusSegment(1))
	clockHost := net.MustAddHostOn("clock", "10.0.3.2", indiss.CampusSegment(3))
	printerHost := net.MustAddHostOn("printer", "10.0.3.3", indiss.CampusSegment(3))

	// One gateway per segment, peered in a ring: gw1→gw2, gw2→gw3,
	// gw3→gw1. Sessions are bidirectional, so the ring is a cyclic
	// mesh — the federation's loop-safety guards keep it duplicate-free.
	gwIPs := []string{"10.0.1.9", "10.0.2.9", "10.0.3.9"}
	var gws []*indiss.System
	defer func() {
		for _, gw := range gws {
			gw.Close()
		}
	}()
	for i, ip := range gwIPs {
		host := net.MustAddHostOn(fmt.Sprintf("gw%d", i+1), ip, indiss.CampusSegment(i+1))
		next := gwIPs[(i+1)%len(gwIPs)]
		sys, err := indiss.Deploy(host, indiss.Config{
			Role:      indiss.RoleGateway,
			GatewayID: host.Name(),
			Peers:     []string{fmt.Sprintf("%s:%d", next, indiss.FederationDefaultPort)},
		})
		if err != nil {
			return err
		}
		gws = append(gws, sys)
		fmt.Printf("federation: gateway %s up on %s, dialing %s\n",
			host.Name(), indiss.CampusSegment(i+1), next)
	}

	// Native services on segment 3, unaware of everything above.
	clock, err := upnp.NewRootDevice(clockHost, upnp.DeviceConfig{
		Kind:         "clock",
		FriendlyName: "CyberGarage Clock Device",
		Services:     []upnp.ServiceConfig{{Kind: "timer"}},
	})
	if err != nil {
		return err
	}
	defer clock.Close()
	printerSA, err := slp.NewServiceAgent(printerHost, slp.AgentConfig{
		AnnounceInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer printerSA.Close()
	if err := printerSA.Register("service:printer", "service:printer://10.0.3.3:515",
		time.Hour, nil); err != nil {
		return err
	}

	// Wait until gw1 (the client's gateway) knows both remote services.
	deadline := time.Now().Add(5 * time.Second)
	for len(gws[0].View().Find("", time.Now())) < 2 {
		if time.Now().After(deadline) {
			return fmt.Errorf("federation never converged")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, rec := range gws[0].View().Find("", time.Now()) {
		fmt.Printf("federation: gw1 learned %s %q from gateway %s, %d hops away\n",
			rec.Origin, rec.URL, rec.OriginGW, rec.Hops)
	}

	// The cross-segment discoveries, through unmodified native clients.
	ua := slp.NewUserAgent(clientHost, slp.AgentConfig{})
	urls, err := ua.FindFirst("service:clock", "", 5*time.Second)
	if err != nil {
		return fmt.Errorf("SLP client: %w", err)
	}
	fmt.Printf("federation: SLP client on seg1 found the seg3 UPnP clock: %s\n", urls[0].URL)

	cp := upnp.NewControlPoint(clientHost, upnp.ControlPointConfig{Timeout: 5 * time.Second})
	dev, err := cp.Discover(upnp.TypeURN("printer", 1), 0)
	if err != nil {
		return fmt.Errorf("UPnP control point: %w", err)
	}
	fmt.Printf("federation: UPnP control point on seg1 found the seg3 SLP printer: %s\n",
		dev.Desc.ModelURL)
	return nil
}
