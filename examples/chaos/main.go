// Chaos: a campus partition mid-discovery, and the healing after.
//
// Two segments, one INDISS gateway each, federated over a routed link.
// A DNS-SD clock on segment 2 is discovered from segment 1 through the
// peering plane. Then the link is cut — a real partition, injected into
// the live fabric: the gateways' TCP session resets and the segments are
// on their own. While split, a second service appears on segment 2 and a
// first one is withdrawn; segment 1 can learn neither fact. On heal the
// peering re-establishes, the snapshot-on-reconnect re-syncs the views,
// and the withdrawal tombstones stop the split-off gateway from
// resurrecting the dead record — the two halves agree again.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"os"
	"time"

	"indiss"
	"indiss/internal/core"
	"indiss/internal/dnssd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

func run() error {
	// A two-building campus with one gateway per segment, peered.
	net := indiss.NewCampus(2)
	defer net.Close()
	gw1Host := net.MustAddHostOn("gw1", "10.0.1.9", indiss.CampusSegment(1))
	gw2Host := net.MustAddHostOn("gw2", "10.0.2.9", indiss.CampusSegment(2))
	svcHost := net.MustAddHostOn("services", "10.0.2.2", indiss.CampusSegment(2))

	gw1, err := indiss.Deploy(gw1Host, indiss.Config{
		Role: indiss.RoleGateway, GatewayID: "gw-1",
		Peers:                  []string{fmt.Sprintf("10.0.2.9:%d", indiss.FederationDefaultPort)},
		FederationPort:         indiss.FederationDefaultPort,
		FederationSyncInterval: 200 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer gw1.Close()
	gw2, err := indiss.Deploy(gw2Host, indiss.Config{
		Role: indiss.RoleGateway, GatewayID: "gw-2",
		FederationPort:         indiss.FederationDefaultPort,
		FederationSyncInterval: 200 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer gw2.Close()

	// A native DNS-SD clock appears in building 2…
	responder, err := dnssd.NewResponder(svcHost, dnssd.ResponderConfig{})
	if err != nil {
		return err
	}
	defer responder.Close()
	if err := responder.Register(dnssd.Registration{
		Instance: "Clock", Service: dnssd.ServiceType("clock"), Port: 9000, TTL: 30,
	}); err != nil {
		return err
	}
	// …and crosses the federation into building 1's view.
	if err := waitKind(gw1, "clock", 10*time.Second); err != nil {
		return fmt.Errorf("initial convergence: %w", err)
	}
	fmt.Println("building 1 discovered the building-2 clock through the federation")

	// CHAOS: the inter-building link goes down, live.
	if err := net.Partition(indiss.CampusSegment(1), indiss.CampusSegment(2)); err != nil {
		return err
	}
	fmt.Println("link cut — campus partitioned")

	// Life on segment 2 goes on: a lamp appears, the clock departs.
	if err := responder.Register(dnssd.Registration{
		Instance: "Lamp", Service: dnssd.ServiceType("lamp"), Port: 9100, TTL: 30,
	}); err != nil {
		return err
	}
	responder.Unregister("Clock", dnssd.ServiceType("clock"))
	if err := waitGone(gw2, "clock", 10*time.Second); err != nil {
		return fmt.Errorf("goodbye on seg2: %w", err)
	}
	lamp1 := len(gw1.View().Find("lamp", time.Now()))
	clock1 := len(gw1.View().Find("clock", time.Now()))
	fmt.Printf("while split, building 1 still believes: clock=%d lamp=%d (both wrong)\n", clock1, lamp1)

	// HEAL: the link returns; the peering reconnects and re-syncs.
	if err := net.Heal(indiss.CampusSegment(1), indiss.CampusSegment(2)); err != nil {
		return err
	}
	if err := waitKind(gw1, "lamp", 15*time.Second); err != nil {
		return fmt.Errorf("lamp never crossed after heal: %w", err)
	}
	if err := waitGone(gw1, "clock", 15*time.Second); err != nil {
		return fmt.Errorf("stale clock survived the heal: %w", err)
	}
	fmt.Println("records healed after partition: the lamp arrived and the dead clock stayed dead")
	return nil
}

func waitKind(sys *indiss.System, kind string, timeout time.Duration) error {
	return wait(sys, kind, timeout, func(n int) bool { return n > 0 })
}

func waitGone(sys *indiss.System, kind string, timeout time.Duration) error {
	return wait(sys, kind, timeout, func(n int) bool { return n == 0 })
}

func wait(sys *core.System, kind string, timeout time.Duration, ok func(int) bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if ok(len(sys.View().Find(kind, time.Now()))) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("view of %q never reached the expected state", kind)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
