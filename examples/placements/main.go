// Placements: the four deployment cases of paper §4.2 (Figure 6).
//
// Where INDISS lives matters: "when the clients and services are based on
// the same discovery model, the most convenient location for INDISS is on
// the listener side." This example runs the same SLP-client / UPnP-service
// pair with INDISS in three placements — service side, client side,
// gateway — and measures the response time of each, demonstrating the
// deployment independence claim of §4.3.
//
//	go run ./examples/placements
package main

import (
	"fmt"
	"os"
	"time"

	"indiss"
	"indiss/internal/simnet"
	"indiss/internal/slp"
	"indiss/internal/upnp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "placements:", err)
		os.Exit(1)
	}
}

type placement struct {
	name string
	role indiss.Role
	// pick selects the INDISS host among (client, service, gateway).
	pick func(c, s, g *simnet.Host) *simnet.Host
}

func run() error {
	placements := []placement{
		{"service side", indiss.RoleServiceSide, func(c, s, g *simnet.Host) *simnet.Host { return s }},
		{"client side", indiss.RoleClientSide, func(c, s, g *simnet.Host) *simnet.Host { return c }},
		{"gateway", indiss.RoleGateway, func(c, s, g *simnet.Host) *simnet.Host { return g }},
	}
	fmt.Println("placement      result                                            time")
	for _, p := range placements {
		url, elapsed, err := runPlacement(p)
		if err != nil {
			fmt.Printf("%-14s FAILED: %v\n", p.name, err)
			continue
		}
		fmt.Printf("%-14s %-48s %8.2fms\n", p.name, url, float64(elapsed.Microseconds())/1000)
	}
	fmt.Println("\nSLP discovery of the UPnP clock succeeds in every placement;")
	fmt.Println("only the response time shifts with where the UPnP leg runs.")
	return nil
}

func runPlacement(p placement) (string, time.Duration, error) {
	net := indiss.NewLAN()
	defer net.Close()
	clientHost := net.MustAddHost("client", "10.0.0.1")
	serviceHost := net.MustAddHost("service", "10.0.0.2")
	gatewayHost := net.MustAddHost("gateway", "10.0.0.9")

	clock, err := upnp.NewRootDevice(serviceHost, upnp.DeviceConfig{
		Kind:         "clock",
		FriendlyName: "Clock",
		Services:     []upnp.ServiceConfig{{Kind: "timer"}},
	})
	if err != nil {
		return "", 0, err
	}
	defer clock.Close()

	sys, err := indiss.Deploy(p.pick(clientHost, serviceHost, gatewayHost), indiss.Config{
		Role:    p.role,
		SDPs:    []indiss.SDP{indiss.SLP, indiss.UPnP},
		NoCache: true, // keep every run on the cold translation path
	})
	if err != nil {
		return "", 0, err
	}
	defer sys.Close()

	ua := slp.NewUserAgent(clientHost, slp.AgentConfig{})
	start := time.Now()
	urls, err := ua.FindFirst("service:clock", "", 3*time.Second)
	if err != nil {
		return "", 0, err
	}
	return urls[0].URL, time.Since(start), nil
}
