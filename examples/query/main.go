// Query plane: the HTTP/JSON lookup API over the gateway's service view.
//
// A gateway runs with the query port enabled; an SLP printer registers
// on the LAN. A plain HTTP client — no SDP stack at all — then asks the
// gateway what it knows: find-by-kind, an SLP predicate filter pushed
// down into the view scan, and a long-poll watch that sees the delta
// when a second printer appears.
//
//	go run ./examples/query
package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"indiss"
	"indiss/internal/query"
	"indiss/internal/slp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "query:", err)
		os.Exit(1)
	}
}

func run() error {
	net := indiss.NewLAN()
	defer net.Close()
	gwHost := net.MustAddHost("gateway", "10.0.0.9")
	printerHost := net.MustAddHost("printer", "10.0.0.2")
	clientHost := net.MustAddHost("client", "10.0.0.1")

	// The gateway: discovery bridging as usual, plus the query plane on
	// an ephemeral port next to it.
	sys, err := indiss.Deploy(gwHost, indiss.Config{
		Role:      indiss.RoleGateway,
		QueryPort: -1,
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	qaddr := sys.QueryPlane().(*query.Server).Addr()
	fmt.Println("gateway: query plane listening on", qaddr)

	// A native SLP printer announces itself; the gateway's monitor
	// learns it passively.
	sa, err := slp.NewServiceAgent(printerHost, slp.AgentConfig{
		AnnounceInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	err = sa.Register("service:printer", "service:printer://10.0.0.2:515", time.Hour,
		slp.AttrList{{Name: "color", Values: []string{"yes"}}, {Name: "ppm", Values: []string{"30"}}})
	if err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sys.View().Find("printer", time.Now())) == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("gateway never learned the printer")
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("gateway: learned the SLP printer from its announcement")

	// A second printer, as a federated peer would deliver it: the
	// attribute list rides along with the record. (SLP's passive
	// SAAdverts carry only URL/type/lifetime, so the local printer has
	// no attrs — which is exactly what the predicate below will show.)
	sys.View().Put(indiss.ServiceRecord{
		Origin:   indiss.SLP,
		Kind:     "printer",
		URL:      "service:printer://10.0.3.7:515",
		Attrs:    map[string]string{"color": "yes", "ppm": "30"},
		Expires:  time.Now().Add(time.Hour),
		OriginGW: "gw-lab",
		Hops:     1,
		Remote:   true,
	})

	// 1. Find by kind — any HTTP client can ask.
	body, err := httpGet(clientHost, qaddr, "/v1/services?kind=printer")
	if err != nil {
		return err
	}
	fmt.Printf("client: GET /v1/services?kind=printer ->\n  %s\n", body)

	// 2. The same lookup with an SLP predicate, URL-encoded. The filter
	// runs inside the view scan — records that fail it are never copied,
	// so only the color printer from the lab survives.
	body, err = httpGet(clientHost, qaddr, "/v1/services?kind=printer&pred=(%26(color%3Dyes)(ppm%3E%3D20))")
	if err != nil {
		return err
	}
	fmt.Printf("client: ... &pred=(&(color=yes)(ppm>=20)) ->\n  %s\n", body)
	if !bytes.Contains(body, []byte(`"count":1`)) {
		return fmt.Errorf("predicate should have matched exactly the lab printer")
	}

	// 3. Watch: take a cursor, register a second printer, long-poll for
	// the delta.
	body, err = httpGet(clientHost, qaddr, "/v1/watch")
	if err != nil {
		return err
	}
	next := cursorFrom(body)
	fmt.Printf("client: GET /v1/watch -> cursor %s\n", next)

	errCh := make(chan error, 1)
	go func() {
		err := sa.Register("service:printer", "service:printer://10.0.0.2:516", time.Hour, nil)
		errCh <- err
	}()
	body, err = httpGet(clientHost, qaddr, "/v1/watch?since="+next+"&wait=5s")
	if err != nil {
		return err
	}
	if err := <-errCh; err != nil {
		return err
	}
	fmt.Printf("client: long-poll saw the delta:\n  %s\n", body)
	fmt.Println("client: watched a service appear over plain HTTP")
	return nil
}

// httpGet issues one close-delimited GET against the query plane and
// returns the response body.
func httpGet(stack indiss.Stack, addr indiss.Addr, target string) ([]byte, error) {
	st, err := stack.DialTCP(addr)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	st.SetReadTimeout(10 * time.Second)
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", target, addr)
	if _, err := st.Write([]byte(req)); err != nil {
		return nil, err
	}
	var buf []byte
	tmp := make([]byte, 4096)
	for {
		n, err := st.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	head, body, ok := bytes.Cut(buf, []byte("\r\n\r\n"))
	if !ok {
		return nil, fmt.Errorf("malformed response %q", buf)
	}
	if !bytes.HasPrefix(head, []byte("HTTP/1.1 200")) {
		return nil, fmt.Errorf("status %q, body %q", bytes.Split(head, []byte("\r\n"))[0], body)
	}
	return body, nil
}

// cursorFrom pulls the "next" field out of a watch response without a
// JSON library — good enough for the example's known-shape body.
func cursorFrom(body []byte) string {
	const marker = `"next":`
	i := bytes.Index(body, []byte(marker))
	if i < 0 {
		return "0"
	}
	j := i + len(marker)
	k := j
	for k < len(body) && body[k] >= '0' && body[k] <= '9' {
		k++
	}
	return string(body[j:k])
}
