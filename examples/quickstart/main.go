// Quickstart: the paper's §2.4 running example.
//
// An SLP client searches for a clock service; the only clock on the
// network is a UPnP device. INDISS, deployed transparently on the service
// host, translates the SLP search into UPnP exchanges and answers with
// the clock's SOAP endpoint — neither the client nor the device is aware
// the bridge exists.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"indiss"
	"indiss/internal/slp"
	"indiss/internal/upnp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A two-host LAN: the client and the service host.
	net := indiss.NewLAN()
	defer net.Close()
	clientHost := net.MustAddHost("client", "10.0.0.1")
	serviceHost := net.MustAddHost("service", "10.0.0.2")

	// The UPnP clock device of the paper's example — a plain native
	// device, unaware of INDISS.
	clock, err := upnp.NewRootDevice(serviceHost, upnp.DeviceConfig{
		Kind:         "clock",
		FriendlyName: "CyberGarage Clock Device",
		Manufacturer: "CyberGarage",
		ModelName:    "Clock",
		Services: []upnp.ServiceConfig{{
			Kind: "timer",
			Actions: map[string]upnp.ActionHandler{
				"GetTime": func(*upnp.Action) ([]upnp.Arg, error) {
					return []upnp.Arg{{Name: "CurrentTime", Value: time.Now().Format("15:04:05")}}, nil
				},
			},
		}},
	})
	if err != nil {
		return err
	}
	defer clock.Close()
	fmt.Println("service host: UPnP clock device up at", clock.Location())

	// INDISS on the service host: SLP and UPnP units.
	sys, err := indiss.Deploy(serviceHost, indiss.Config{
		Role: indiss.RoleServiceSide,
		SDPs: []indiss.SDP{indiss.SLP, indiss.UPnP},
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	fmt.Println("service host: INDISS deployed (service side), units:", sys.Units())

	// A plain SLP client, also unaware of INDISS.
	ua := slp.NewUserAgent(clientHost, slp.AgentConfig{})
	fmt.Println("client: SLP search for service:clock ...")
	urls, err := ua.FindFirst("service:clock", "", 3*time.Second)
	if err != nil {
		return fmt.Errorf("SLP search failed: %w", err)
	}
	fmt.Println("client: SrvRply received:")
	for _, u := range urls {
		fmt.Printf("client:   %s (lifetime %ds)\n", u.URL, u.Lifetime)
	}
	fmt.Println("client: the clock's SOAP control endpoint came from a UPnP description")
	fmt.Println("        document INDISS fetched and parsed on the client's behalf.")
	return nil
}
