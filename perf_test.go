// Allocation-budget assertions for the translation hot path. These run as
// ordinary tests (tier-1), so an allocation regression on the
// parser→bus→composer pipeline fails `go test ./...` — not just a
// benchmark someone has to remember to read. PERF.md records the budgets
// and the baseline they improved on.
package indiss_test

import (
	"testing"
	"time"

	"indiss/internal/core"
	"indiss/internal/dnssd"
	"indiss/internal/events"
	"indiss/internal/httpx"
	"indiss/internal/predict"
	"indiss/internal/query"
)

// TestBusPublishAllocFree: the bus publish fast path performs zero
// allocations. The envelope is passed by value into each subscriber's
// preallocated queue, and the copy-on-write subscriber list is read with
// one atomic load — nothing on the path escapes. (The subscriber queue
// hand-off itself is preallocated channel buffer, excluded by
// construction.)
func TestBusPublishAllocFree(t *testing.T) {
	bus := events.NewBus()
	defer bus.Close()
	for _, name := range []string{"slp-unit", "upnp-unit", "jini-unit"} {
		bus.Subscribe(name, events.ListenerFunc(func(env events.Envelope) {
			env.Release()
		}))
	}
	stream := events.NewStream(
		events.E(events.NetType, "SLP"),
		events.E(events.ServiceRequest, ""),
		events.E(events.ServiceType, "clock"),
	)
	// 40 runs × 3 subscribers stays below the 64-slot queues even if the
	// workers never get scheduled during the measurement (AllocsPerRun
	// pins GOMAXPROCS to 1), so no publish blocks.
	allocs := testing.AllocsPerRun(40, func() {
		bus.Publish("monitor", stream)
	})
	if allocs != 0 {
		t.Errorf("Bus.Publish allocates %.1f times per call, want 0", allocs)
	}
}

// TestViewFindHotAllocBudget: a cached ServiceView.Find hit — the paper's
// Figure 9b best case — costs at most 2 allocations (the presized result
// slice; returned records share their Attrs read-only).
func TestViewFindHotAllocBudget(t *testing.T) {
	view := core.NewServiceView()
	now := time.Now()
	view.Put(core.ServiceRecord{
		Origin:  core.SDPUPnP,
		Kind:    "clock",
		URL:     "soap://10.0.0.2:4004/service/timer/control",
		Attrs:   map[string]string{"friendlyName": "Clock"},
		Expires: now.Add(time.Hour),
	})
	for i := 0; i < 256; i++ {
		view.Put(core.ServiceRecord{
			Origin:  core.SDPSLP,
			Kind:    "other-" + string(rune('a'+i%26)),
			URL:     "service:other://10.0.0.3/" + string(rune('a'+i%26)),
			Expires: now.Add(time.Hour),
		})
	}
	allocs := testing.AllocsPerRun(100, func() {
		if len(view.Find("clock", now)) != 1 {
			t.Fatal("cached hit missed")
		}
	})
	if allocs > 2 {
		t.Errorf("cached Find hit allocates %.1f times, budget is 2", allocs)
	}
}

// TestQueryCachedAnswerAllocBudget: serving a cached find-by-kind HTTP
// answer — the query plane's steady state under read-heavy traffic —
// costs at most 4 allocations. The path is one struct-keyed map lookup
// and one append of the prerendered wire image into the caller's
// buffer, so in practice it allocates zero; the budget leaves headroom
// without letting a per-request map or encoder sneak back in.
func TestQueryCachedAnswerAllocBudget(t *testing.T) {
	view := core.NewServiceView()
	now := time.Now()
	for i := 0; i < 64; i++ {
		view.Put(core.ServiceRecord{
			Origin:  core.SDPSLP,
			Kind:    "printer",
			URL:     "service:printer://10.0.0." + string(rune('0'+i%10)) + "/" + string(rune('a'+i%26)),
			Attrs:   map[string]string{"color": "yes", "ppm": "30"},
			Expires: now.Add(time.Hour),
		})
	}
	e := query.NewEngine(view, "gw-perf")
	buf := make([]byte, 0, 64<<10)
	var err error
	// Warm the cache, then measure pure hits.
	if buf, _, err = e.AppendAnswer(buf[:0], "printer", "(color=yes)", now); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var hit bool
		buf, hit, err = e.AppendAnswer(buf[:0], "printer", "(color=yes)", now)
		if err != nil || !hit {
			t.Fatalf("cache miss during measurement: hit=%v err=%v", hit, err)
		}
	})
	if allocs > 4 {
		t.Errorf("cached query answer allocates %.1f times, budget is 4", allocs)
	}
}

// TestHTTPXAppendToAllocFree: marshalling into a pooled (or otherwise
// preallocated) buffer allocates nothing, which is what the transport's
// pooled write path relies on.
func TestHTTPXAppendToAllocFree(t *testing.T) {
	req := &httpx.Request{
		Method: "M-SEARCH",
		Target: "*",
		Header: httpx.NewHeader(
			"HOST", "239.255.255.250:1900",
			"MAN", `"ssdp:discover"`,
			"ST", "urn:schemas-upnp-org:device:clock:1",
		),
	}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		buf = req.AppendTo(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendTo allocates %.1f times per call, want 0", allocs)
	}
}

// TestHTTPXParseAllocBudget: parsing a headerful SSDP response costs at
// most 4 allocations (head copy, presized field slice, message struct) —
// the zero-copy rewrite's contract, down from ~10 with the line-splitting
// parser.
func TestHTTPXParseAllocBudget(t *testing.T) {
	raw := (&httpx.Response{
		StatusCode: 200,
		Header: httpx.NewHeader(
			"CACHE-CONTROL", "max-age=1800",
			"ST", "urn:schemas-upnp-org:device:clock:1",
			"USN", "uuid:clock::urn:schemas-upnp-org:device:clock:1",
			"LOCATION", "http://10.0.0.2:4004/description.xml",
			"SERVER", "simnet/1.0 UPnP/1.0 indiss/1.0",
		),
	}).Marshal()
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := httpx.ParseResponse(raw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("ParseResponse allocates %.1f times, budget is 4", allocs)
	}
}

// benchDNSSDMessages returns the browse query / bridged answer pair of
// one gateway-mediated mDNS exchange, shaped exactly like the DNS-SD
// unit's composeAnswer output (the A record maps the bridge's host name
// to the foreign service's endpoint address — that redirection is the
// bridge's design, not a fixture typo). Shared by the alloc budget below
// and BenchmarkDNSSDWireRoundTrip so the two gates measure one message.
func benchDNSSDMessages() (*dnssd.Message, *dnssd.Message) {
	query := &dnssd.Message{
		Questions: []dnssd.Question{{Name: "_clock._tcp.local.", Type: dnssd.TypePTR}},
	}
	resp := &dnssd.Message{
		Response:      true,
		Authoritative: true,
		Answers: []dnssd.Record{{
			Name: "_clock._tcp.local.", Type: dnssd.TypePTR, TTL: 120,
			Target: "Clock._clock._tcp.local.",
		}},
		Additional: []dnssd.Record{
			{
				Name: "Clock._clock._tcp.local.", Type: dnssd.TypeSRV, TTL: 120,
				CacheFlush: true, Port: 9000, Target: "indiss-10-0-0-9.local.",
			},
			{
				Name: "Clock._clock._tcp.local.", Type: dnssd.TypeTXT, TTL: 120,
				CacheFlush: true, Text: []string{"origin=SLP", "url=service:clock://10.0.0.2:4005"},
			},
			{Name: "indiss-10-0-0-9.local.", Type: dnssd.TypeA, TTL: 120, CacheFlush: true, IP: "10.0.0.2"},
		},
	}
	return query, resp
}

// TestDNSSDRoundTripAllocBudget: the wire cost of one bridged DNS-SD
// exchange — compose the PTR query, parse it, compose the
// PTR+SRV+TXT+A answer, parse that. AppendTo into reused buffers is
// allocation-free by construction (same discipline as httpx); parsing
// materializes name and text strings (one presized builder per name,
// stack-buffered A-record rendering), which bounds the budget at 20 for
// the pair — measured ~16 with headroom for a GC mid-measurement.
func TestDNSSDRoundTripAllocBudget(t *testing.T) {
	query, resp := benchDNSSDMessages()
	qbuf := make([]byte, 0, 512)
	rbuf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		qbuf = query.AppendTo(qbuf[:0])
		if _, err := dnssd.Parse(qbuf); err != nil {
			t.Fatal(err)
		}
		rbuf = resp.AppendTo(rbuf[:0])
		if _, err := dnssd.Parse(rbuf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 20 {
		t.Errorf("DNS-SD query→response round trip allocates %.1f times, budget is 20", allocs)
	}
}

// TestDNSSDAppendToAllocFree: composing into a preallocated buffer
// allocates nothing — the unit's compose path relies on it.
func TestDNSSDAppendToAllocFree(t *testing.T) {
	msg := &dnssd.Message{
		Response:      true,
		Authoritative: true,
		Answers: []dnssd.Record{{
			Name: "_clock._tcp.local.", Type: dnssd.TypePTR, TTL: 120,
			Target: "Clock._clock._tcp.local.",
		}},
	}
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(100, func() {
		buf = msg.AppendTo(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("Message.AppendTo allocates %.1f times per call, want 0", allocs)
	}
}

// TestPooledStreamSteadyStateAllocFree: an acquire→build→release cycle
// recycles storage through the pool, so steady-state stream construction
// does not allocate per message. (The bus leg of the cycle is covered by
// TestBusPublishAllocFree and the events race tests; it cannot be measured
// here because AllocsPerRun pins GOMAXPROCS to 1, starving the subscriber
// workers that perform the releases.) A tiny tolerance absorbs a GC
// emptying the pool mid-measurement.
func TestPooledStreamSteadyStateAllocFree(t *testing.T) {
	events.NewPooledStream(events.E(events.ServiceAlive, "warm")).Free()
	allocs := testing.AllocsPerRun(100, func() {
		ps := events.NewPooledStream(
			events.E(events.NetType, "SLP"),
			events.E(events.ServiceAlive, ""),
			events.E(events.ServiceType, "clock"),
		)
		ps.Free()
	})
	if allocs > 0.5 {
		t.Errorf("pooled build/release cycle allocates %.1f times per message, want ~0", allocs)
	}
}

// TestPredictObserveAllocBudget: the predictor's lookup probe rides
// inline on the view's Find path and the query plane's serve path, so
// it must stay allocation-free: one atomic rule-table load, one map
// lookup, two non-blocking channel sends of value types. The budget of
// 1 leaves headroom for runtime noise without letting a per-lookup
// event allocation sneak in. (AllocsPerRun pins GOMAXPROCS to 1, so
// the mine loop is starved and the event channel fills — exactly the
// backpressure path, which must also not allocate.)
func TestPredictObserveAllocBudget(t *testing.T) {
	view := core.NewServiceView()
	p, err := predict.New(predict.Config{}, view, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	allocs := testing.AllocsPerRun(100, func() {
		p.Observe("10.0.0.9", "printer")
	})
	if allocs > 1 {
		t.Errorf("Observe allocates %.1f times per lookup, budget is 1", allocs)
	}
}
