// Package indiss is the public API of the INDISS reproduction: an
// INteroperable DIscovery System for networked Services, after Bromberg &
// Issarny, Middleware 2005.
//
// INDISS lets clients and services that speak different service discovery
// protocols (SLP, UPnP, Jini, DNS-SD) find each other without any change to the
// applications. Deploy an instance on any network stack — a simulated
// host for tests and experiments:
//
//	net := indiss.NewLAN()
//	defer net.Close()
//	gw := net.MustAddHost("gateway", "10.0.0.9")
//	sys, err := indiss.Deploy(gw, indiss.Config{Role: indiss.RoleGateway})
//	if err != nil { ... }
//	defer sys.Close()
//
// or a live one, binding real sockets on a real interface:
//
//	stack, err := indiss.RealStack()
//	if err != nil { ... }
//	sys, err := indiss.Deploy(stack, indiss.Config{Role: indiss.RoleGateway})
//
// The instance passively detects which discovery protocols are in use
// (monitor component), instantiates protocol units on demand, and
// translates discovery traffic between them through a semantic event
// vocabulary. See DESIGN.md for the architecture (§8 covers the
// transport contract) and EXPERIMENTS.md for the reproduced evaluation.
package indiss

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"indiss/internal/core"
	"indiss/internal/federation"
	"indiss/internal/netapi"
	"indiss/internal/predict"
	"indiss/internal/query"
	"indiss/internal/realnet"
	"indiss/internal/units"
)

// Stack is the transport an INDISS instance runs on: one named node with
// one IPv4 address on one multicast segment, plus the socket operations
// the system performs. Both fabrics satisfy it — *simnet.Host (via
// NewLAN/NewTopology, for tests and experiments) and the live-socket
// stack RealStack returns.
type Stack = netapi.Stack

// Addr identifies a UDP or TCP endpoint ("ip:port" form via String).
type Addr = netapi.Addr

// Stream is one reliable byte-stream connection (a TCP socket or its
// simulated equivalent), as returned by Stack.DialTCP.
type Stream = netapi.Stream

// RealStack opens a live network stack on this machine, auto-detecting
// the first up, multicast-capable, non-loopback IPv4 interface (loopback
// as a last resort). Deploying on it binds real sockets: the monitor
// joins the SDP multicast groups with shared SO_REUSEADDR binders, so
// native stacks already running on the host are unaffected.
func RealStack() (Stack, error) {
	return realnet.NewStack(realnet.Options{})
}

// RealStackOn is RealStack pinned to a named interface (e.g. "eth0",
// "lo"). An empty ip uses the interface's first IPv4 address.
func RealStackOn(iface, ip string) (Stack, error) {
	return realnet.NewStack(realnet.Options{Interface: iface, IP: ip})
}

// Role places an INDISS instance (paper §4.2): on the client host, the
// service host, or a dedicated gateway node.
type Role = core.Role

// Deployment roles.
const (
	RoleClientSide  = core.RoleClientSide
	RoleServiceSide = core.RoleServiceSide
	RoleGateway     = core.RoleGateway
)

// SDP names a service discovery protocol.
type SDP = core.SDP

// The supported protocols: the paper's three plus DNS-SD/mDNS
// (Zeroconf/Bonjour).
const (
	SLP   = core.SDPSLP
	UPnP  = core.SDPUPnP
	Jini  = core.SDPJini
	DNSSD = core.SDPDNSSD
)

// System is a running INDISS instance.
type System = core.System

// TranslationProfile models INDISS's own processing cost (zero = free).
type TranslationProfile = core.TranslationProfile

// ServiceRecord is one discovered service in SDP-neutral form.
type ServiceRecord = core.ServiceRecord

// Spec is a parsed Figure 5a system specification.
type Spec = core.Spec

// ParseSpec parses the paper's specification language:
//
//	System SDP = {
//	    Component Monitor = { ScanPort = { 1900; 427 } }
//	    Component Unit SLP(port=427);
//	    Component Unit UPnP(port=1900);
//	}
func ParseSpec(src string) (*Spec, error) { return core.ParseSpec(src) }

// UnitOptions tunes the individual protocol units.
type UnitOptions struct {
	// SLP tunes the SLP unit.
	SLP units.SLPUnitConfig
	// UPnP tunes the UPnP unit.
	UPnP units.UPnPUnitConfig
	// Jini tunes the Jini unit.
	Jini units.JiniUnitConfig
	// DNSSD tunes the DNS-SD unit.
	DNSSD units.DNSSDUnitConfig
}

// Config defines an INDISS deployment.
type Config struct {
	// Role is where the instance is deployed. Required.
	Role Role
	// SDPs restricts which protocol units the instance may
	// instantiate. Empty means every registered unit. Entries are
	// validated against the registry at Deploy time.
	SDPs []SDP
	// Dynamic defers unit instantiation until the monitor detects the
	// protocol in the environment (paper §3). When false, all units
	// start eagerly.
	Dynamic bool
	// ThresholdBps enables the paper's §4.2 adaptation policy: on a
	// service-side deployment, units switch to active
	// re-advertisement when observed traffic falls below the
	// threshold. Zero disables the policy.
	ThresholdBps float64
	// Profile models INDISS's own translation cost; the zero value is
	// free (right for functional use), CalibratedProfile() reproduces
	// the paper's prototype cost.
	Profile TranslationProfile
	// NoCache disables answering from the service view; every request
	// then triggers fresh native exchanges (the cold path of the
	// paper's Figures 8 and 9a).
	NoCache bool
	// Units tunes the individual protocol units.
	Units UnitOptions
	// Spec, when non-empty, is a Figure 5a specification whose
	// ScanPort and Unit declarations override SDPs and the monitor's
	// port table.
	Spec string

	// DataDir, when non-empty, makes the service view persistent: the
	// instance opens a log-structured store under the directory,
	// replays it on start (warm boot — discovery knowledge survives a
	// crash or restart, bounded by each record's TTL), and mirrors
	// every view change back into it. With federation enabled, epoch
	// and tombstone state persists too, so a restarted gateway resumes
	// digest anti-entropy instead of re-learning the federation. Empty
	// keeps everything memory-only.
	DataDir string
	// ViewMemBudget caps the view's estimated in-memory footprint in
	// bytes. Past the budget, cold remote records spill to the DataDir
	// store and are served from disk on point lookups; locally
	// observed records always stay resident. Zero means unbounded.
	// Requires DataDir.
	ViewMemBudget int64

	// Peers lists the "ip:port" federation endpoints of peer gateways.
	// A non-empty list (or a non-zero FederationPort) enables the
	// view-sync peering plane: the instance listens for peers, dials
	// the listed ones, and exchanges ServiceView deltas so discovery
	// knowledge crosses segment boundaries multicast cannot.
	Peers []string
	// GatewayID names this instance in the federation; it must be
	// unique across peered gateways. Empty defaults to the host name.
	GatewayID string
	// FederationPort is the TCP port the federation endpoint listens
	// on. Zero uses federation.DefaultPort (7741) when federation is
	// enabled; a negative value listens on an ephemeral port.
	FederationPort int
	// FederationSyncInterval spaces the peering plane's anti-entropy
	// rounds. Zero keeps the federation default (1s); tests and
	// latency-sensitive deployments lower it for faster repair after
	// partitions and crashes. Since protocol v3 a round is jittered
	// ±20% and exchanges per-origin digests, transferring records only
	// on proven divergence — the interval now prices repair latency,
	// not a full view re-send.
	FederationSyncInterval time.Duration
	// FederationFlushInterval is the delta-batching window: view
	// changes within one window coalesce into a single BATCH frame per
	// peer. Zero flushes immediately (batching still emerges under
	// backlog).
	FederationFlushInterval time.Duration
	// FederationFanout, when positive, lets the gateway self-organize
	// its peering: it learns peers-of-peers from gossip and keeps
	// dialing the best-scored ones until it holds this many sessions.
	// Zero peers exactly as configured.
	FederationFanout int
	// FederationStack, when non-nil, carries the peering plane on its
	// own network stack instead of the deployment stack — the
	// multihomed-gateway shape of the containerized rig (DESIGN.md
	// §14): discovery multicast stays pinned to the segment interface
	// while federation listens and dials on the backbone. Nil keeps
	// federation on the deployment stack.
	FederationStack Stack

	// QueryPort enables the HTTP/JSON query plane: a read-only lookup
	// API over the instance's service view (find by kind, SLP-predicate
	// filtering, long-poll watch), listening on its own TCP port next
	// to the federation port. Zero disables it; a positive value
	// listens on that port; a negative value listens on an ephemeral
	// port (tests). See DESIGN.md §12 for the wire schema.
	QueryPort int

	// Predict enables the predictive discovery cache: an online miner
	// over the gateway's lookup stream whose co-discovery rules prefetch
	// the query plane's answer cache and refresh remote records of
	// predicted kinds ahead of TTL expiry. It composes with whatever
	// planes are enabled — prefetch needs QueryPort, predictive refresh
	// needs federation, and the miner runs regardless. When DataDir is
	// set, the rule table persists across restarts (rules.iprt). See
	// DESIGN.md §13.
	Predict bool
	// PredictConfig tunes the miner; the zero value selects the
	// documented defaults. Ignored unless Predict is set.
	PredictConfig predict.Config
}

// FederationDefaultPort is the default federation listening port.
const FederationDefaultPort = federation.DefaultPort

// QueryDefaultPort is the default query-plane listening port.
const QueryDefaultPort = query.DefaultPort

// Registry builds the production unit registry for the given options.
func Registry(opts UnitOptions) *core.Registry {
	r := core.NewRegistry()
	r.Register(core.SDPSLP, func() core.Unit { return units.NewSLPUnit(opts.SLP) })
	r.Register(core.SDPUPnP, func() core.Unit { return units.NewUPnPUnit(opts.UPnP) })
	r.Register(core.SDPJini, func() core.Unit { return units.NewJiniUnit(opts.Jini) })
	r.Register(core.SDPDNSSD, func() core.Unit { return units.NewDNSSDUnit(opts.DNSSD) })
	return r
}

// Deploy starts an INDISS instance on the given network stack — a
// *simnet.Host from the simulated testbed, or a live stack from
// RealStack; the system behaves identically on either.
func Deploy(stack Stack, cfg Config) (*System, error) {
	if cfg.Role == 0 {
		return nil, fmt.Errorf("indiss: Config.Role is required")
	}
	if cfg.ViewMemBudget > 0 && cfg.DataDir == "" {
		return nil, fmt.Errorf("indiss: ViewMemBudget requires DataDir (spilled records need somewhere to live)")
	}
	coreCfg := core.Config{
		Role:           cfg.Role,
		Units:          cfg.SDPs,
		Dynamic:        cfg.Dynamic,
		ThresholdBps:   cfg.ThresholdBps,
		Profile:        cfg.Profile,
		NoCache:        cfg.NoCache,
		DataDir:        cfg.DataDir,
		ViewMemBudget:  cfg.ViewMemBudget,
		GatewayID:      cfg.GatewayID,
		Peers:          cfg.Peers,
		FederationPort: cfg.FederationPort,
	}
	if len(cfg.Peers) > 0 || cfg.FederationPort != 0 {
		peers := make([]Addr, 0, len(cfg.Peers))
		for _, p := range cfg.Peers {
			addr, err := netapi.ParseAddr(p)
			if err != nil {
				return nil, fmt.Errorf("indiss: peer %q: %w", p, err)
			}
			peers = append(peers, addr)
		}
		fedStack := stack
		if cfg.FederationStack != nil {
			fedStack = cfg.FederationStack
		}
		coreCfg.Federation = func(s *core.System) (io.Closer, error) {
			fcfg := federation.Config{
				GatewayID:           s.GatewayID(),
				ListenPort:          cfg.FederationPort,
				Peers:               peers,
				AntiEntropyInterval: cfg.FederationSyncInterval,
				FlushInterval:       cfg.FederationFlushInterval,
				MaxActivePeers:      cfg.FederationFanout,
			}
			if st := s.ViewStore(); st != nil {
				fcfg.Persistence = st
			}
			return federation.New(fedStack, s.View(), fcfg)
		}
	}
	if cfg.QueryPort != 0 {
		coreCfg.QueryPort = cfg.QueryPort
		coreCfg.Query = func(s *core.System) (io.Closer, error) {
			return query.New(stack, s.View(), query.Config{
				ListenPort: cfg.QueryPort,
				GatewayID:  s.GatewayID(),
			})
		}
	}
	if cfg.Predict {
		coreCfg.Predict = func(s *core.System) (io.Closer, error) {
			pcfg := cfg.PredictConfig
			if pcfg.RulePath == "" && cfg.DataDir != "" {
				pcfg.RulePath = filepath.Join(cfg.DataDir, "rules.iprt")
			}
			// The predictor composes with whatever planes exist: no
			// query plane means no HTTP observer and no prefetch
			// target, no federation means no predictive refresh — the
			// miner still runs on the view's native lookups.
			qs, _ := s.QueryPlane().(*query.Server)
			var fed predict.Refresher
			if ep, ok := s.Federation().(*federation.Endpoint); ok {
				fed = ep
			}
			return predict.New(pcfg, s.View(), qs, fed)
		}
	}
	if cfg.Spec != "" {
		spec, err := core.ParseSpec(cfg.Spec)
		if err != nil {
			return nil, err
		}
		if len(spec.ScanPorts) > 0 {
			table, err := core.DefaultTable().Restrict(spec.ScanPorts)
			if err != nil {
				return nil, err
			}
			coreCfg.Table = table
		}
		if len(spec.Units) > 0 {
			// A fresh slice, not coreCfg.Units[:0]: coreCfg.Units still
			// aliases the caller's cfg.SDPs array here, and appending
			// through the alias would overwrite it in place.
			coreCfg.Units = make([]SDP, 0, len(spec.Units))
			for _, u := range spec.Units {
				coreCfg.Units = append(coreCfg.Units, u.SDP)
			}
		}
	}
	registry := Registry(cfg.Units)
	// Validate the effective unit list against the registry now: under
	// Dynamic, an unknown SDP would otherwise fail silently forever (the
	// monitor's detection handler has nobody to report to).
	for _, sdp := range coreCfg.Units {
		if !registry.Has(sdp) {
			return nil, fmt.Errorf(
				"indiss: config names unit %q but no such unit is registered (have %v)",
				sdp, registry.SDPs())
		}
	}
	return core.NewSystem(stack, registry, coreCfg)
}
