//go:build !race

package indiss_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
