package indiss_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"indiss"
	"indiss/internal/query"
)

// queryGet is a one-shot HTTP client against the query plane: dial,
// one GET, read the close-delimited exchange.
func queryGet(stack indiss.Stack, addr indiss.Addr, target string, timeout time.Duration) (int, []byte, error) {
	st, err := stack.DialTCP(addr)
	if err != nil {
		return 0, nil, err
	}
	defer st.Close()
	st.SetReadTimeout(timeout)
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", target, addr)
	if _, err := st.Write([]byte(req)); err != nil {
		return 0, nil, err
	}
	var buf []byte
	tmp := make([]byte, 4096)
	for {
		n, err := st.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	i := bytes.Index(buf, []byte("\r\n\r\n"))
	if i < 0 {
		return 0, nil, fmt.Errorf("no head/body split in %q", buf)
	}
	var code int
	if _, err := fmt.Sscanf(string(buf[:i]), "HTTP/1.1 %d", &code); err != nil {
		return 0, nil, err
	}
	return code, buf[i+4:], nil
}

// queryServer unwraps the deployed system's query plane.
func queryServer(t *testing.T, sys *indiss.System) *query.Server {
	t.Helper()
	qp, ok := sys.QueryPlane().(*query.Server)
	if !ok {
		t.Fatalf("QueryPlane() = %T, want *query.Server", sys.QueryPlane())
	}
	return qp
}

// TestQueryPlaneEndToEnd deploys a gateway with the query port enabled
// and exercises the HTTP surface: find-by-kind, predicate filtering,
// the counters endpoint.
func TestQueryPlaneEndToEnd(t *testing.T) {
	net := indiss.NewLAN()
	defer net.Close()
	gw := net.MustAddHost("gw", "10.0.0.9")
	client := net.MustAddHost("client", "10.0.0.10")

	sys, err := indiss.Deploy(gw, indiss.Config{Role: indiss.RoleGateway, QueryPort: -1})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer sys.Close()
	qaddr := queryServer(t, sys).Addr()

	now := time.Now()
	for i, attrs := range []map[string]string{
		{"color": "yes", "ppm": "30"},
		{"color": "no", "ppm": "12"},
	} {
		sys.View().Put(indiss.ServiceRecord{
			Origin:  indiss.SLP,
			Kind:    "printer",
			URL:     fmt.Sprintf("service:printer://10.0.0.%d", 20+i),
			Attrs:   attrs,
			Expires: now.Add(time.Hour),
		})
	}

	code, body, err := queryGet(client, qaddr, "/v1/services?kind=printer", 5*time.Second)
	if err != nil || code != 200 {
		t.Fatalf("find: code=%d err=%v", code, err)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("body: %v\n%s", err, body)
	}
	if m["count"].(float64) != 2 {
		t.Fatalf("count = %v", m["count"])
	}

	code, body, err = queryGet(client, qaddr,
		"/v1/services?kind=printer&pred=(%26(color%3Dyes)(ppm%3E%3D20))", 5*time.Second)
	if err != nil || code != 200 {
		t.Fatalf("predicate find: code=%d err=%v", code, err)
	}
	_ = json.Unmarshal(body, &m)
	if m["count"].(float64) != 1 {
		t.Fatalf("predicate count = %v (%s)", m["count"], body)
	}

	code, body, err = queryGet(client, qaddr, "/debug/vars", 5*time.Second)
	if err != nil || code != 200 {
		t.Fatalf("vars: code=%d err=%v", code, err)
	}
	var vars map[string]float64
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("vars body: %v", err)
	}
	if vars["queries"] != 2 {
		t.Fatalf("queries counter = %v", vars["queries"])
	}
}

// TestQueryPlaneServesSpilledRecords pins the cold-tier fallthrough:
// records the memory budget pushed to disk must still appear in HTTP
// answers, merged under the answer cache.
func TestQueryPlaneServesSpilledRecords(t *testing.T) {
	net := indiss.NewLAN()
	defer net.Close()
	gw := net.MustAddHost("gw", "10.0.0.9")
	client := net.MustAddHost("client", "10.0.0.10")

	sys, err := indiss.Deploy(gw, indiss.Config{
		Role:          indiss.RoleGateway,
		DataDir:       t.TempDir(),
		ViewMemBudget: 1, // everything remote spills
		QueryPort:     -1,
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer sys.Close()
	qsrv := queryServer(t, sys)

	const n = 40
	for i := 0; i < n; i++ {
		sys.View().Put(indiss.ServiceRecord{
			Origin:   indiss.UPnP,
			Kind:     "spillkind",
			URL:      fmt.Sprintf("soap://10.0.1.%d:4004/svc", i),
			Expires:  time.Now().Add(time.Hour),
			OriginGW: "gw-far",
			Hops:     1,
			Remote:   true,
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for sys.ViewStore().SpilledCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d spilled", sys.ViewStore().SpilledCount(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}

	code, body, err := queryGet(client, qsrv.Addr(), "/v1/services?kind=spillkind", 5*time.Second)
	if err != nil || code != 200 {
		t.Fatalf("query: code=%d err=%v", code, err)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if got := int(m["count"].(float64)); got != n {
		t.Fatalf("HTTP answer has %d records, want %d (spilled slice dropped?)", got, n)
	}
	if st := qsrv.Stats(); st.ColdMerged == 0 {
		t.Fatalf("no cold merges recorded: %+v", st)
	}
}

// TestQueryPlaneUnderChurn is the query plane's race-on soak:
// predicate-filtered queries and long-poll watchers run concurrently
// with view churn, sub-second TTL expiry and continuous EnforceBudget
// spilling. The assertions are liveness and sanity — the value of the
// test is every interleaving the race detector sees.
func TestQueryPlaneUnderChurn(t *testing.T) {
	net := indiss.NewLAN()
	defer net.Close()
	gw := net.MustAddHost("gw", "10.0.0.9")

	sys, err := indiss.Deploy(gw, indiss.Config{
		Role:          indiss.RoleGateway,
		DataDir:       t.TempDir(),
		ViewMemBudget: 4 << 10, // tight: spill pressure throughout
		QueryPort:     -1,
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer sys.Close()
	qaddr := queryServer(t, sys).Addr()

	const runFor = 1200 * time.Millisecond
	stop := make(chan struct{})
	time.AfterFunc(runFor, func() { close(stop) })
	var wg sync.WaitGroup
	var queries, watches atomic.Uint64

	// Churner: put records with mixed TTLs (some lapse mid-run), remove
	// a slice explicitly, keep every spill candidate remote.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ttl := time.Hour
			if i%3 == 0 {
				ttl = 40 * time.Millisecond // expires under the watchers
			}
			url := fmt.Sprintf("soap://10.0.2.%d:4004/svc%d", i%50, i%200)
			sys.View().Put(indiss.ServiceRecord{
				Origin:   indiss.UPnP,
				Kind:     "churnkind",
				URL:      url,
				Attrs:    map[string]string{"slot": fmt.Sprintf("%d", i%8)},
				Expires:  time.Now().Add(ttl),
				OriginGW: "gw-far",
				Hops:     1,
				Remote:   i%2 == 0,
			})
			if i%7 == 0 {
				sys.View().Remove(indiss.UPnP, url)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Budget enforcer: continuous spilling racing the scans.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				sys.View().EnforceBudget(time.Now())
			}
		}
	}()

	// Query clients: predicate-filtered finds, each from its own host.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		client := net.MustAddHost(fmt.Sprintf("qc-%d", c), fmt.Sprintf("10.0.0.%d", 30+c))
		go func(stack indiss.Stack, slot int) {
			defer wg.Done()
			target := fmt.Sprintf("/v1/services?kind=churnkind&pred=(slot%%3D%d)", slot)
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _, err := queryGet(stack, qaddr, target, 5*time.Second)
				if err == nil && code == 200 {
					queries.Add(1)
				}
			}
		}(client, c)
	}

	// Watcher: cursor through the delta feed, tolerating resyncs.
	wg.Add(1)
	watcher := net.MustAddHost("watcher", "10.0.0.40")
	go func() {
		defer wg.Done()
		var next uint64
		haveCursor := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			target := "/v1/watch"
			if haveCursor {
				target = fmt.Sprintf("/v1/watch?since=%d&wait=100ms", next)
			}
			code, body, err := queryGet(watcher, qaddr, target, 5*time.Second)
			if err != nil || code != 200 {
				continue
			}
			var m map[string]any
			if json.Unmarshal(body, &m) != nil {
				continue
			}
			next = uint64(m["next"].(float64))
			haveCursor = true
			watches.Add(1)
		}
	}()

	wg.Wait()

	// The plane survived; one more query must still be served, and the
	// soak must have actually exercised both read paths.
	probe := net.MustAddHost("probe", "10.0.0.50")
	code, _, err := queryGet(probe, qaddr, "/v1/services?kind=churnkind", 5*time.Second)
	if err != nil || code != 200 {
		t.Fatalf("post-churn query: code=%d err=%v", code, err)
	}
	if queries.Load() == 0 || watches.Load() == 0 {
		t.Fatalf("soak idle: queries=%d watches=%d", queries.Load(), watches.Load())
	}
}
