#!/usr/bin/env bash
# Guard the PR-4 transport abstraction: the transport-neutral packages
# must stay free of internal/simnet, even transitively — they speak
# internal/netapi, so the same build runs on the simulator and on real
# sockets. The authoritative package list lives in arch_test.go
# (simnetFreePackages); this script extracts it from there so the two
# guards — `go test` and standalone CI/pre-push — can never drift apart.
set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t packages < <(
  sed -n '/^var simnetFreePackages/,/^}/p' arch_test.go |
    grep -o '"indiss/[^"]*"' | tr -d '"'
)
if [ "${#packages[@]}" -lt 5 ]; then
  echo "FAIL: could not extract the package list from arch_test.go (got ${#packages[@]} entries)" >&2
  exit 1
fi

fail=0
for pkg in "${packages[@]}"; do
  if go list -deps "$pkg" | grep -qx 'indiss/internal/simnet'; then
    echo "FAIL: $pkg depends on internal/simnet (must speak internal/netapi only)" >&2
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "ok: ${#packages[@]} packages are simnet-free"
