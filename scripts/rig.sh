#!/usr/bin/env bash
# Host-side driver for the containerized rig (deploy/, DESIGN.md §14):
# brings a compose topology up, gates on gateway readiness, runs the
# live interop matrix and churn soak from inside the rig container,
# replays the tc/netem partition-heal drill, collects the medians
# artifact, and tears everything down — the teardown is trapped, so a
# failed phase can never leak containers onto the host or a CI runner.
#
#   scripts/rig.sh lan2            # full drill on the 2-node LAN
#   scripts/rig.sh campus3         # full drill on the 3-segment campus
#   scripts/rig.sh lan2 smoke      # up + wait + matrix only
#   RIG_KEEP=1 scripts/rig.sh ...  # skip teardown (debugging)
#   RIG_OUT=dir scripts/rig.sh ... # where medians JSON lands (default ./rig-out)
set -euo pipefail
cd "$(dirname "$0")/.."

topo="${1:-lan2}"
phase="${2:-full}"
out="${RIG_OUT:-rig-out}"
compose="deploy/$topo/compose.yml"
[ -f "$compose" ] || { echo "rig.sh: unknown topology '$topo' (no $compose)" >&2; exit 2; }
mkdir -p "$out"

dc() { docker compose -f "$compose" "$@"; }

# Per-topology wiring: gateway health/query addresses as the rig
# container reaches them, and the chaos target map (schedule name ->
# container). The fault interface is resolved at run time below.
case "$topo" in
  lan2)
    health="172.28.10.11:9091,172.28.10.12:9091"
    query="http://172.28.10.11:8080,http://172.28.10.12:8080"
    chaos_ips=(seg1=gw1/172.28.10.11 seg2=gw2/172.28.10.12)
    soak_iface=""   # single network: let the rig auto-detect
    ;;
  campus3)
    health="172.28.1.11:9091,172.28.2.11:9091,172.28.3.11:9091"
    query="http://172.28.1.11:8080,http://172.28.2.11:8080,http://172.28.3.11:8080"
    # Campus faults land on the backbone: a seg1/seg2 partition is the
    # federation path between gw1 and gw2 going dark.
    chaos_ips=(seg1=gw1/172.28.9.11 seg2=gw2/172.28.9.12 seg3=gw3/172.28.9.13)
    # Churn on seg3: it reaches seg1/seg2 planes only via federation.
    soak_iface="-ip 172.28.3.100"
    ;;
  *) echo "rig.sh: no wiring for topology '$topo'" >&2; exit 2 ;;
esac

teardown() {
  code=$?
  if [ "${RIG_KEEP:-0}" = "1" ]; then
    echo "rig.sh: RIG_KEEP=1 — leaving $topo up"
  else
    echo "rig.sh: tearing down $topo"
    dc logs --no-color >"$out/$topo-compose.log" 2>&1 || true
    dc down -v --remove-orphans --timeout 20 || true
  fi
  exit $code
}
trap teardown EXIT

echo "rig.sh: compose config lint"
dc config -q

echo "rig.sh: building image and starting $topo"
dc up -d --build

echo "rig.sh: readiness gate"
dc exec -T rig indiss-rig wait -gw "$health" -timeout 120s

echo "rig.sh: live interop matrix"
dc exec -T rig indiss-rig matrix -timeout 30s -json /tmp/matrix.json
dc exec -T rig cat /tmp/matrix.json >"$out/$topo-matrix.json"

if [ "$phase" = smoke ]; then exit 0; fi

echo "rig.sh: churn soak"
# shellcheck disable=SC2086
dc exec -T rig indiss-rig soak -query "$query" $soak_iface \
  -services 8 -rounds 5 -timeout 60s -json /tmp/soak.json
dc exec -T rig cat /tmp/soak.json >"$out/$topo-soak.json"

echo "rig.sh: tc partition-heal drill"
# The chaos executor shells into the gateway containers, so it runs on
# the HOST (where docker lives), not in the rig container.
go build -o "$out/indiss-rig" ./cmd/indiss-rig
# Resolve each gateway's fault interface from its fault-plane IP — the
# interface name inside a multihomed container is an implementation
# detail of docker, so it is looked up, never assumed.
targets=()
for spec in "${chaos_ips[@]}"; do
  name="${spec%%=*}" rest="${spec#*=}"
  ctr="${rest%%/*}" ip="${rest#*/}"
  iface=$(dc exec -T "$ctr" ip -o -4 addr show | awk -v ip="$ip" '$4 ~ "^"ip"/" {print $2; exit}')
  [ -n "$iface" ] || { echo "rig.sh: $ctr owns no interface with $ip" >&2; exit 1; }
  targets+=(-target "$name=$ctr:$iface")
done
t0=$(date +%s%N)
"$out/indiss-rig" chaos -schedule deploy/schedules/partition-heal.chaos \
  -compose "$compose" "${targets[@]}" -grace 2s &
chaos_pid=$!
# While the schedule runs, the soak keeps churning: its convergence
# deadline spans the partition, so a pass means federation repaired
# within TTL after the heal.
# shellcheck disable=SC2086
dc exec -T rig indiss-rig soak -query "$query" $soak_iface \
  -services 4 -rounds 2 -timeout 90s -json /tmp/chaos-soak.json
wait "$chaos_pid"
t1=$(date +%s%N)
dc exec -T rig cat /tmp/chaos-soak.json >"$out/$topo-chaos-soak.json"
echo "{\"schedule\":\"partition-heal.chaos\",\"wall_ms\":$(( (t1 - t0) / 1000000 ))}" \
  >"$out/$topo-chaos.json"

echo "rig.sh: $topo drill complete; medians in $out/"
