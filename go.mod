module indiss

go 1.24
