package indiss_test

import (
	"testing"
	"time"

	"indiss"
)

// putRec inserts one record into a running system's view.
func putRec(sys *indiss.System, url string, ttl time.Duration) {
	sys.View().Put(indiss.ServiceRecord{
		Origin:  indiss.UPnP,
		Kind:    "urn:schemas-upnp-org:service:Clock:1",
		URL:     url,
		Attrs:   map[string]string{"friendlyName": "clock"},
		Expires: time.Now().Add(ttl),
	})
}

// waitStoreKeys polls the system's store until the keydir holds n live
// keys, proving the delta pump has caught up with the view mutations.
func waitStoreKeys(t *testing.T, sys *indiss.System, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sys.ViewStore().Stats().IndexKeys != n {
		if time.Now().After(deadline) {
			t.Fatalf("store never reached %d live keys (have %d)",
				n, sys.ViewStore().Stats().IndexKeys)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWarmBootRestoresViewAcrossRestart is the end-to-end persistence
// contract: a redeployed system with the same DataDir replays the log
// and serves pre-restart discovery knowledge — except what the world
// retracted while the process was down. A record that expired or was
// withdrawn before the crash must not resurrect on replay.
func TestWarmBootRestoresViewAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	net := indiss.NewLAN()
	defer net.Close()
	host := net.MustAddHost("gw", "10.0.0.9")

	sys, err := indiss.Deploy(host, indiss.Config{Role: indiss.RoleGateway, DataDir: dir})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	const (
		longURL      = "soap://10.0.0.2:4004/clock"
		shortURL     = "soap://10.0.0.3:4004/clock"
		withdrawnURL = "soap://10.0.0.4:4004/clock"
	)
	putRec(sys, longURL, time.Hour)
	putRec(sys, shortURL, 120*time.Millisecond)
	putRec(sys, withdrawnURL, time.Hour)
	waitStoreKeys(t, sys, 3)
	if !sys.View().Remove(indiss.UPnP, withdrawnURL) {
		t.Fatal("Remove returned false")
	}
	waitStoreKeys(t, sys, 2)
	sys.Close()

	// Let the short record's lifetime lapse while "down".
	time.Sleep(150 * time.Millisecond)

	sys2, err := indiss.Deploy(host, indiss.Config{Role: indiss.RoleGateway, DataDir: dir})
	if err != nil {
		t.Fatalf("redeploy: %v", err)
	}
	defer sys2.Close()

	rc := sys2.Recovered()
	if len(rc.Records) != 1 {
		t.Fatalf("warm boot replayed %d records, want 1", len(rc.Records))
	}
	if rc.DroppedExpired != 1 {
		t.Fatalf("DroppedExpired = %d, want 1 (the short-TTL record)", rc.DroppedExpired)
	}
	if _, ok := sys2.View().Get(indiss.UPnP, longURL); !ok {
		t.Fatal("long-lived record did not survive the restart")
	}
	if _, ok := sys2.View().Get(indiss.UPnP, shortURL); ok {
		t.Fatal("record that expired while down resurrected on replay")
	}
	if _, ok := sys2.View().Get(indiss.UPnP, withdrawnURL); ok {
		t.Fatal("withdrawn record resurrected on replay")
	}
}

// TestColdStartWithoutDataDir pins the default: no DataDir, no store,
// zero-value recovery report.
func TestColdStartWithoutDataDir(t *testing.T) {
	net := indiss.NewLAN()
	defer net.Close()
	host := net.MustAddHost("gw", "10.0.0.9")
	sys, err := indiss.Deploy(host, indiss.Config{Role: indiss.RoleGateway})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer sys.Close()
	if sys.ViewStore() != nil {
		t.Fatal("ViewStore non-nil without DataDir")
	}
	if rc := sys.Recovered(); len(rc.Records) != 0 || rc.Segments != 0 {
		t.Fatalf("Recovered not zero without DataDir: %+v", rc)
	}
}

// TestViewMemBudgetRequiresDataDir pins the config validation.
func TestViewMemBudgetRequiresDataDir(t *testing.T) {
	net := indiss.NewLAN()
	defer net.Close()
	host := net.MustAddHost("gw", "10.0.0.9")
	_, err := indiss.Deploy(host, indiss.Config{Role: indiss.RoleGateway, ViewMemBudget: 1 << 20})
	if err == nil {
		t.Fatal("Deploy with ViewMemBudget but no DataDir succeeded")
	}
}

// TestBudgetedDeploySpillsAndServes drives the full stack under a tiny
// memory budget: remote records spill to disk, point lookups still find
// them, and the in-memory estimate respects the budget.
func TestBudgetedDeploySpillsAndServes(t *testing.T) {
	dir := t.TempDir()
	net := indiss.NewLAN()
	defer net.Close()
	host := net.MustAddHost("gw", "10.0.0.9")
	sys, err := indiss.Deploy(host, indiss.Config{
		Role:          indiss.RoleGateway,
		DataDir:       dir,
		ViewMemBudget: 1, // force everything remote out
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer sys.Close()

	const n = 40
	urls := make([]string, n)
	for i := range urls {
		urls[i] = "soap://10.0.1." + string(rune('0'+i%10)) + ":4004/svc" + string(rune('a'+i%26))
		sys.View().Put(indiss.ServiceRecord{
			Origin:   indiss.UPnP,
			Kind:     "urn:schemas-upnp-org:service:Clock:1",
			URL:      urls[i],
			Expires:  time.Now().Add(time.Hour),
			OriginGW: "gw-far",
			Hops:     1,
			Remote:   true,
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for sys.ViewStore().SpilledCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d records spilled", sys.ViewStore().SpilledCount(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, u := range urls {
		if _, ok := sys.View().Get(indiss.UPnP, u); !ok {
			t.Fatalf("spilled record %s unreachable via Get", u)
		}
	}
	if mu := sys.View().MemUsage(); mu > 4096 {
		t.Fatalf("MemUsage %d after full spill; want near zero", mu)
	}
}
